(* Tests for mv_fame: protocol step tables, MPI operation sequences,
   benchmark latency shapes, and the distributed protocol
   verification. *)

module Protocol = Mv_fame.Protocol
module Topology = Mv_fame.Topology
module Mpi = Mv_fame.Mpi
module Benchmark = Mv_fame.Benchmark
module Distributed = Mv_fame.Distributed
module Flow = Mv_core.Flow

let exclusive = function
  | Protocol.MI | Protocol.IM -> true
  | Protocol.II | Protocol.SI | Protocol.IS | Protocol.SS
  | Protocol.EI | Protocol.IE -> false

let test_protocol_writes_gain_exclusivity () =
  List.iter
    (fun variant ->
       List.iter
         (fun state ->
            List.iter
              (fun node ->
                 let next, messages =
                   Protocol.step variant state (Protocol.Write node)
                 in
                 Alcotest.(check bool)
                   (Printf.sprintf "%s: write from %s exclusive"
                      (Protocol.variant_name variant)
                      (Protocol.state_name state))
                   true (exclusive next);
                 Alcotest.(check bool) "messages nonneg" true (messages >= 0))
              [ 0; 1 ])
         Protocol.all_states)
    [ Protocol.Msi; Protocol.Mesi; Protocol.Msi_migratory ]

let test_protocol_hits_are_free () =
  List.iter
    (fun variant ->
       Alcotest.(check int)
         (Protocol.variant_name variant ^ ": read hit")
         0
         (snd (Protocol.step variant Protocol.SI (Protocol.Read 0)));
       Alcotest.(check int)
         (Protocol.variant_name variant ^ ": write hit in M")
         0
         (snd (Protocol.step variant Protocol.MI (Protocol.Write 0))))
    [ Protocol.Msi; Protocol.Mesi; Protocol.Msi_migratory ]

let test_protocol_variant_differences () =
  (* MESI: silent upgrade from Exclusive *)
  Alcotest.(check int) "MESI silent upgrade" 0
    (snd (Protocol.step Protocol.Mesi Protocol.EI (Protocol.Write 0)));
  Alcotest.(check bool) "MESI read miss gets E" true
    (fst (Protocol.step Protocol.Mesi Protocol.II (Protocol.Read 0)) = Protocol.EI);
  (* migratory: reading a remote-M line takes ownership *)
  Alcotest.(check bool) "migratory read migrates" true
    (fst (Protocol.step Protocol.Msi_migratory Protocol.IM (Protocol.Read 0))
     = Protocol.MI);
  (* plain MSI degrades to shared instead *)
  Alcotest.(check bool) "MSI read shares" true
    (fst (Protocol.step Protocol.Msi Protocol.IM (Protocol.Read 0)) = Protocol.SS)

let test_protocol_mirror_symmetry () =
  (* node-1 operations behave like mirrored node-0 operations *)
  List.iter
    (fun state ->
       let next0, m0 = Protocol.step Protocol.Msi state (Protocol.Write 0) in
       let mirror = function
         | Protocol.SI -> Protocol.IS | Protocol.IS -> Protocol.SI
         | Protocol.MI -> Protocol.IM | Protocol.IM -> Protocol.MI
         | Protocol.EI -> Protocol.IE | Protocol.IE -> Protocol.EI
         | (Protocol.II | Protocol.SS) as s -> s
       in
       let next1, m1 =
         Protocol.step Protocol.Msi (mirror state) (Protocol.Write 1)
       in
       Alcotest.(check bool) "mirrored state" true (next1 = mirror next0);
       Alcotest.(check int) "mirrored cost" m0 m1)
    Protocol.all_states

let test_protocol_messages_fold () =
  (* ping-pong write0/read1 alternation under MSI costs 3 messages per
     op in steady state *)
  let ops = [ Protocol.Write 0; Protocol.Read 1; Protocol.Write 0 ] in
  Alcotest.(check int) "fold from cold" (2 + 3 + 3)
    (Protocol.messages Protocol.Msi ops)

let test_mpi_sequences () =
  let eager_ops = Mpi.ops_per_round Mpi.Eager ~size:4 in
  let rdv_ops = Mpi.ops_per_round Mpi.Rendezvous ~size:4 in
  (* eager: flag write + flag read per direction *)
  Alcotest.(check int) "eager flag ops" 4 (List.length eager_ops);
  (* rendezvous adds a 4-op handshake per direction *)
  Alcotest.(check int) "rendezvous flag ops" 12 (List.length rdv_ops);
  Alcotest.(check int) "eager copies" 8 (Mpi.copies_per_round Mpi.Eager ~size:4);
  Alcotest.(check int) "rendezvous copies" 0
    (Mpi.copies_per_round Mpi.Rendezvous ~size:4);
  Alcotest.(check int) "payload xfers" (4 * 8)
    (Mpi.payload_xfers_per_round Mpi.Eager ~size:4)

let test_topology_metadata () =
  Alcotest.(check int) "ring hops" 2 (Topology.hops Topology.Ring);
  Alcotest.(check bool) "bus contended" true (Topology.contended Topology.Bus);
  Alcotest.(check bool) "crossbar uncontended" false
    (Topology.contended Topology.Crossbar)

let rates = Benchmark.default_rates

let test_latency_topology_order () =
  let latency topo =
    Benchmark.round_latency Protocol.Msi topo Mpi.Eager ~size:2 ~rates
  in
  let crossbar = latency Topology.Crossbar in
  let bus = latency Topology.Bus in
  let ring = latency Topology.Ring in
  Alcotest.(check bool)
    (Printf.sprintf "crossbar (%.4f) < bus (%.4f)" crossbar bus)
    true (crossbar < bus);
  Alcotest.(check bool)
    (Printf.sprintf "bus (%.4f) < ring (%.4f)" bus ring)
    true (bus < ring)

let test_latency_size_monotone () =
  let latency size =
    Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Eager ~size ~rates
  in
  Alcotest.(check bool) "monotone in size" true (latency 1 < latency 4);
  Alcotest.(check bool) "monotone in size (2)" true (latency 4 < latency 8)

let test_eager_rendezvous_crossover () =
  let eager size =
    Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Eager ~size ~rates
  in
  let rdv size =
    Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Rendezvous ~size ~rates
  in
  Alcotest.(check bool) "eager wins small messages" true (eager 1 < rdv 1);
  Alcotest.(check bool) "rendezvous wins large messages" true (rdv 16 < eager 16)

let test_migratory_wins_pingpong () =
  let latency variant =
    Benchmark.round_latency variant Topology.Bus Mpi.Eager ~size:1 ~rates
  in
  Alcotest.(check bool) "migratory beats MSI on ping-pong" true
    (latency Protocol.Msi_migratory < latency Protocol.Msi)

let test_crossbar_matches_serial_bound () =
  (* no contention and serial operation: the pipeline must agree with
     the hand-computed serial time (up to the copy/coherence overlap
     at transfer boundaries) *)
  let measured =
    Benchmark.round_latency Protocol.Msi Topology.Crossbar Mpi.Rendezvous
      ~size:2 ~rates
  in
  let bound =
    Benchmark.latency_lower_bound Protocol.Msi Topology.Crossbar Mpi.Rendezvous
      ~size:2 ~rates
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.5f ~ bound %.5f" measured bound)
    true
    (abs_float (measured -. bound) /. bound < 0.02)

let test_barrier_latency () =
  let latency topo =
    Benchmark.barrier_latency Protocol.Msi topo ~rates
  in
  let crossbar = latency Topology.Crossbar in
  let bus = latency Topology.Bus in
  let ring = latency Topology.Ring in
  Alcotest.(check bool) "crossbar fastest" true (crossbar < bus);
  Alcotest.(check bool) "ring slowest" true (bus < ring);
  (* barrier episodes are much shorter than data ping-pong rounds *)
  let pingpong =
    Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Eager ~size:4 ~rates
  in
  Alcotest.(check bool) "barrier cheaper than size-4 ping-pong" true
    (bus < pingpong)

(* ---- N-node NUMA ---- *)

let test_numa_step_invariants () =
  (* from any reachable state, after a write node i is the only holder *)
  let nodes = 4 in
  let ops =
    List.concat_map
      (fun i -> [ Protocol.Read i; Protocol.Write i ])
      (List.init nodes Fun.id)
  in
  let seen = Hashtbl.create 64 in
  let rec explore state =
    if not (Hashtbl.mem seen state) then begin
      Hashtbl.replace seen state ();
      List.iter
        (fun op ->
           let next, messages = Mv_fame.Numa.step ~nodes state op in
           (match op with
            | Protocol.Write i ->
              Alcotest.(check bool) "writer owns" true
                (next.Mv_fame.Numa.owner = Some i);
              Alcotest.(check int) "writer sole sharer" (1 lsl i)
                next.Mv_fame.Numa.sharers
            | Protocol.Read i ->
              Alcotest.(check bool) "reader shares" true
                (next.Mv_fame.Numa.owner = Some i
                 || next.Mv_fame.Numa.sharers land (1 lsl i) <> 0));
           List.iter
             (fun (src, dst) ->
                Alcotest.(check bool) "endpoints valid" true
                  (src >= 0 && src < nodes && dst >= 0 && dst < nodes))
             messages;
           explore next)
        ops
    end
  in
  explore Mv_fame.Numa.initial_state;
  Alcotest.(check bool) "state space small" true (Hashtbl.length seen <= 40)

let test_numa_hits_free () =
  let nodes = 4 in
  let after_w2, _ =
    Mv_fame.Numa.step ~nodes Mv_fame.Numa.initial_state (Protocol.Write 2)
  in
  let _, msgs = Mv_fame.Numa.step ~nodes after_w2 (Protocol.Write 2) in
  Alcotest.(check int) "write hit free" 0 (List.length msgs);
  let _, msgs = Mv_fame.Numa.step ~nodes after_w2 (Protocol.Read 2) in
  Alcotest.(check int) "read hit free" 0 (List.length msgs)

let test_numa_hops () =
  Alcotest.(check int) "local" 0
    (Mv_fame.Numa.hops ~nodes:4 Topology.Ring ~src:2 ~dst:2);
  Alcotest.(check int) "ring wraps" 1
    (Mv_fame.Numa.hops ~nodes:4 Topology.Ring ~src:3 ~dst:0);
  Alcotest.(check int) "ring far" 2
    (Mv_fame.Numa.hops ~nodes:4 Topology.Ring ~src:0 ~dst:2);
  Alcotest.(check int) "bus flat" 1
    (Mv_fame.Numa.hops ~nodes:4 Topology.Bus ~src:0 ~dst:3)

let test_numa_latency_shapes () =
  let latency topo bench = Mv_fame.Numa.latency ~nodes:4 topo bench ~rates in
  (* ring ping-pong cost grows with distance; crossbar is flat *)
  let ring1 = latency Topology.Ring (Mv_fame.Numa.Pair_pingpong 1) in
  let ring2 = latency Topology.Ring (Mv_fame.Numa.Pair_pingpong 2) in
  Alcotest.(check bool)
    (Printf.sprintf "ring distance matters (%.4f < %.4f)" ring1 ring2)
    true (ring1 < ring2);
  let xbar1 = latency Topology.Crossbar (Mv_fame.Numa.Pair_pingpong 1) in
  let xbar2 = latency Topology.Crossbar (Mv_fame.Numa.Pair_pingpong 2) in
  Alcotest.(check bool) "crossbar distance-free" true
    (abs_float (xbar1 -. xbar2) < 1e-9);
  (* token ring circulation: crossbar < bus < ring *)
  let tr topo = latency topo Mv_fame.Numa.Token_ring in
  Alcotest.(check bool) "crossbar < bus" true
    (tr Topology.Crossbar < tr Topology.Bus);
  Alcotest.(check bool) "bus < ring" true (tr Topology.Bus < tr Topology.Ring)

let test_numa_node_sweep () =
  let token nodes =
    Mv_fame.Numa.latency ~nodes Topology.Ring Mv_fame.Numa.Token_ring ~rates
  in
  Alcotest.(check bool) "more nodes, longer circulation" true
    (token 2 < token 3 && token 3 < token 4)

(* ---- MPI programs (concurrent ranks) ---- *)

module Prog = Mv_fame.Mpi_program

let test_program_barrier_analytic () =
  (* one iteration = barrier-synchronized work: the cycle time is the
     expected maximum of R iid exponentials = mean * H_R *)
  let mean = 0.1 in
  List.iter
    (fun ranks ->
       let latency =
         Prog.iteration_latency
           ~programs:(Prog.work_barrier ~ranks ~work_mean:mean)
           Topology.Crossbar ~rates
       in
       let harmonic =
         List.fold_left ( +. ) 0.0
           (List.init ranks (fun i -> 1.0 /. float_of_int (i + 1)))
       in
       Alcotest.(check bool)
         (Printf.sprintf "%d ranks: %.5f vs %.5f" ranks latency (mean *. harmonic))
         true
         (abs_float (latency -. (mean *. harmonic)) < 1e-6))
    [ 2; 3 ]

let test_program_overlap_widens_crossbar_gap () =
  let gap programs =
    Prog.iteration_latency ~programs Topology.Bus ~rates
    /. Prog.iteration_latency ~programs Topology.Crossbar ~rates
  in
  let serial_gap = gap (Prog.pingpong ~partner:1 ~size:2) in
  let overlap_gap = gap (Prog.simultaneous_ring ~ranks:3 ~size:2) in
  Alcotest.(check bool)
    (Printf.sprintf "overlap widens the gap (%.2fx -> %.2fx)" serial_gap
       overlap_gap)
    true (overlap_gap > serial_gap)

let test_program_loops () =
  (* k messages per iteration scale the cycle time k-fold *)
  let latency k =
    Prog.iteration_latency
      ~programs:
        [ [ Prog.Loop (k, [ Prog.Send { dst = 1; size = 1 } ]) ];
          [ Prog.Loop (k, [ Prog.Recv { src = 0; size = 1 } ]) ] ]
      Topology.Bus ~rates
  in
  Alcotest.(check bool) "3 sends cost three times one send" true
    (abs_float ((latency 3 /. latency 1) -. 3.0) < 0.2)

let test_program_validation () =
  List.iter
    (fun programs ->
       try
         ignore (Prog.spec ~programs Topology.Bus ~rates);
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ())
    [
      [ [ Prog.Send { dst = 0; size = 1 } ]; [] ] (* self-send *);
      [ [ Prog.Send { dst = 7; size = 1 } ]; [] ] (* bad rank *);
      [ [ Prog.Work (-1.0) ]; [] ] (* bad work *);
      [ [] ] (* one rank *);
    ]

let test_distributed_correct () =
  let v =
    Flow.verify (Distributed.spec Distributed.Correct) Distributed.properties
  in
  Alcotest.(check bool) "all properties hold" true (Flow.all_hold v)

let test_grant_before_ack_caught () =
  let v =
    Flow.verify
      (Distributed.spec Distributed.Grant_before_ack)
      [ Distributed.coherence ]
  in
  Alcotest.(check bool) "race caught" false (Flow.all_hold v);
  (* and the checker produces a readable witness ending in the error *)
  match Flow.action_witness v ~gate:"error" with
  | None -> Alcotest.fail "expected a witness"
  | Some t ->
    let labels = t.Mv_lts.Trace.labels in
    Alcotest.(check bool) "ends in error" true
      (List.nth labels (List.length labels - 1) = "error");
    Alcotest.(check bool) "the grant precedes the ack in the witness" true
      (List.exists (fun l -> Mv_lts.Label.gate l = "grant1"
                          || Mv_lts.Label.gate l = "grant0") labels)

let test_distributed_bug_caught () =
  let v =
    Flow.verify
      (Distributed.spec Distributed.Dropped_invalidation)
      [ Distributed.coherence ]
  in
  Alcotest.(check bool) "coherence violated" false (Flow.all_hold v)

let suite =
  [
    Alcotest.test_case "writes gain exclusivity" `Quick
      test_protocol_writes_gain_exclusivity;
    Alcotest.test_case "hits are free" `Quick test_protocol_hits_are_free;
    Alcotest.test_case "variant differences" `Quick
      test_protocol_variant_differences;
    Alcotest.test_case "mirror symmetry" `Quick test_protocol_mirror_symmetry;
    Alcotest.test_case "messages fold" `Quick test_protocol_messages_fold;
    Alcotest.test_case "mpi sequences" `Quick test_mpi_sequences;
    Alcotest.test_case "topology metadata" `Quick test_topology_metadata;
    Alcotest.test_case "latency: topology order" `Quick
      test_latency_topology_order;
    Alcotest.test_case "latency: size monotone" `Quick test_latency_size_monotone;
    Alcotest.test_case "eager/rendezvous crossover" `Quick
      test_eager_rendezvous_crossover;
    Alcotest.test_case "migratory wins ping-pong" `Quick
      test_migratory_wins_pingpong;
    Alcotest.test_case "crossbar matches serial bound" `Quick
      test_crossbar_matches_serial_bound;
    Alcotest.test_case "barrier latency" `Quick test_barrier_latency;
    Alcotest.test_case "numa: protocol invariants" `Quick
      test_numa_step_invariants;
    Alcotest.test_case "numa: hits are free" `Quick test_numa_hits_free;
    Alcotest.test_case "numa: hop metric" `Quick test_numa_hops;
    Alcotest.test_case "numa: latency shapes" `Quick test_numa_latency_shapes;
    Alcotest.test_case "numa: node sweep" `Quick test_numa_node_sweep;
    Alcotest.test_case "mpi programs: barrier = max of exponentials" `Quick
      test_program_barrier_analytic;
    Alcotest.test_case "mpi programs: overlap widens crossbar gap" `Quick
      test_program_overlap_widens_crossbar_gap;
    Alcotest.test_case "mpi programs: loops" `Quick test_program_loops;
    Alcotest.test_case "mpi programs: validation" `Quick
      test_program_validation;
    Alcotest.test_case "distributed protocol verified" `Quick
      test_distributed_correct;
    Alcotest.test_case "distributed bug caught" `Quick test_distributed_bug_caught;
    Alcotest.test_case "grant-before-ack race caught" `Quick
      test_grant_before_ack_caught;
  ]
