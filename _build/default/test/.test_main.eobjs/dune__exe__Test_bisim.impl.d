test/test_bisim.ml: Alcotest List Mv_bisim Mv_lts QCheck2 QCheck_alcotest
