test/test_lts.ml: Alcotest Array Astring Format Hashtbl Int List Mv_lts Mv_util Option Printf QCheck2 QCheck_alcotest
