test/test_compose.ml: Alcotest List Mv_bisim Mv_calc Mv_compose Mv_lts Printf QCheck2 QCheck_alcotest String
