test/test_markov.ml: Alcotest Array List Mv_markov Mv_xstream Printf QCheck2 QCheck_alcotest
