test/test_report.ml: Alcotest Array Astring Filename Fun List Mv_bisim Mv_calc Mv_core Mv_fame Mv_faust Mv_lts Mv_xstream String Sys Unix
