test/test_diagnostics.ml: Alcotest List Mv_bisim Mv_calc Mv_lts Mv_xstream
