test/test_chp.ml: Alcotest List Mv_bisim Mv_calc Mv_chp Mv_lts
