test/test_xstream.ml: Alcotest Array List Mv_bisim Mv_calc Mv_core Mv_imc Mv_lts Mv_mcl Mv_xstream Printf QCheck2 QCheck_alcotest
