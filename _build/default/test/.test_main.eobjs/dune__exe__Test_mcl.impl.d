test/test_mcl.ml: Alcotest List Mv_lts Mv_mcl Mv_util Option QCheck2 QCheck_alcotest
