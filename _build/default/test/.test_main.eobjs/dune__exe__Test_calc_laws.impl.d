test/test_calc_laws.ml: Format Mv_bisim Mv_calc QCheck2 QCheck_alcotest
