test/test_flow.ml: Alcotest List Mv_bisim Mv_calc Mv_compose Mv_core Mv_imc Mv_lts Mv_markov Mv_mcl Mv_sim Mv_xstream Printf
