test/test_util.ml: Alcotest List Mv_util Printf QCheck2 QCheck_alcotest
