test/test_sim.ml: Alcotest Mv_imc Mv_lts Mv_sim Mv_xstream Printf
