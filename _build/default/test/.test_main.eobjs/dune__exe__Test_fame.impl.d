test/test_fame.ml: Alcotest Fun Hashtbl List Mv_core Mv_fame Mv_lts Printf
