test/test_imc.ml: Alcotest Array List Mv_calc Mv_core Mv_imc Mv_lts Mv_markov Mv_xstream Option Printf QCheck2 QCheck_alcotest
