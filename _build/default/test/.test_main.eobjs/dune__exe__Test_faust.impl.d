test/test_faust.ml: Alcotest List Mv_bisim Mv_calc Mv_compose Mv_core Mv_faust Mv_lts Mv_mcl Printf String
