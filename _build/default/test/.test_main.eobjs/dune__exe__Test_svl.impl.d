test/test_svl.ml: Alcotest Array Astring Filename Fun List Mv_core Sys
