test/test_calc.ml: Alcotest Format List Mv_bisim Mv_calc Mv_lts Option Printf QCheck2 QCheck_alcotest
