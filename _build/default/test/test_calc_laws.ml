(* Algebraic laws of the MVL calculus, checked on randomly generated
   behaviour terms: the parallel operators are commutative and
   associative modulo strong bisimulation, choice is commutative and
   absorbs stop, hiding is idempotent, normalization is idempotent,
   and printing followed by parsing is the identity. *)

module Ast = Mv_calc.Ast
module Parser = Mv_calc.Parser
module State_space = Mv_calc.State_space
module Strong = Mv_bisim.Strong

let gates = [ "a"; "b"; "c" ]

(* closed, guarded, recursion-free behaviours (finite by construction) *)
let behavior_gen =
  let open QCheck2.Gen in
  let gate = oneofl gates in
  let atom =
    oneof
      [ return Ast.Stop;
        return (Ast.Exit []);
        map (fun g -> Ast.act g [] Ast.Stop) gate;
        map2 (fun g v -> Ast.act g [ Ast.Send (Ast.vint v) ] Ast.Stop) gate
          (int_bound 2);
        map2 (fun g h -> Ast.act g [] (Ast.act h [] Ast.Stop)) gate gate ]
  in
  let rec build depth =
    if depth = 0 then atom
    else
      let sub = build (depth - 1) in
      oneof
        [ atom;
          map2 (fun x y -> Ast.Choice [ x; y ]) sub sub;
          map3 (fun gs x y -> Ast.Par (Ast.Gates gs, x, y))
            (oneofl [ []; [ "a" ]; [ "a"; "b" ] ])
            sub sub;
          map2 (fun x y -> Ast.Par (Ast.All, x, y)) sub sub;
          map2 (fun g x -> Ast.Hide ([ g ], x)) gate sub;
          map2 (fun x y -> Ast.Seq (x, [], y)) sub sub;
          map (fun x -> Ast.Guard (Ast.vbool true, x)) sub ]
  in
  build 3

let lts_of behavior =
  State_space.lts { Ast.enums = []; processes = []; init = behavior }

let equivalent a b = Strong.equivalent (lts_of a) (lts_of b)

let law name count gen predicate =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen predicate)

let pair2 = QCheck2.Gen.pair behavior_gen behavior_gen
let triple3 = QCheck2.Gen.triple behavior_gen behavior_gen behavior_gen

let suite =
  [
    law "||| is commutative (modulo strong bisimulation)" 40 pair2
      (fun (p, q) ->
         equivalent (Ast.Par (Ast.Gates [], p, q)) (Ast.Par (Ast.Gates [], q, p)));
    law "||| is associative" 25 triple3 (fun (p, q, r) ->
        equivalent
          (Ast.Par (Ast.Gates [], Ast.Par (Ast.Gates [], p, q), r))
          (Ast.Par (Ast.Gates [], p, Ast.Par (Ast.Gates [], q, r))));
    law "|[G]| is commutative" 40 pair2 (fun (p, q) ->
        let g = Ast.Gates [ "a"; "b" ] in
        equivalent (Ast.Par (g, p, q)) (Ast.Par (g, q, p)));
    law "choice is commutative" 40 pair2 (fun (p, q) ->
        equivalent (Ast.Choice [ p; q ]) (Ast.Choice [ q; p ]));
    law "stop is neutral for choice" 40 behavior_gen (fun p ->
        equivalent (Ast.Choice [ p; Ast.Stop ]) p);
    law "choice is idempotent" 40 behavior_gen (fun p ->
        equivalent (Ast.Choice [ p; p ]) p);
    law "hiding is idempotent" 40 behavior_gen (fun p ->
        equivalent
          (Ast.Hide ([ "a" ], Ast.Hide ([ "a" ], p)))
          (Ast.Hide ([ "a" ], p)));
    law "hiding all gates then one more changes nothing" 40 behavior_gen
      (fun p ->
         equivalent
           (Ast.Hide (gates, p))
           (Ast.Hide ([ "c" ], Ast.Hide (gates, p))));
    law "normalize is idempotent" 60 behavior_gen (fun p ->
        Ast.normalize (Ast.normalize p) = Ast.normalize p);
    law "normalize preserves behaviour" 40 behavior_gen (fun p ->
        equivalent (Ast.normalize p) p);
    law "print/parse round trip" 60 behavior_gen (fun p ->
        let printed = Format.asprintf "%a" Ast.pp_behavior p in
        Parser.behavior_of_string printed = p);
    law "gate substitution respects renaming equivalence" 40 behavior_gen
      (fun p ->
         (* renaming a to a fresh gate and hiding it equals hiding a *)
         equivalent
           (Ast.Hide ([ "z" ], Ast.subst_gates [ ("a", "z") ] p))
           (Ast.Hide ([ "a" ], p)));
  ]
