(* Tests for the report/table layer and for file-level I/O paths that
   the other suites exercise only in memory. *)

module Report = Mv_core.Report

let with_capture f =
  (* Report prints to stdout; redirect it to a temp file *)
  let path = Filename.temp_file "mv_report" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
        flush stdout;
        Unix.dup2 saved Unix.stdout;
        Unix.close saved;
        Unix.close fd)
    f;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  contents

let test_table_layout () =
  let output =
    with_capture (fun () ->
        Report.table ~title:"demo" ~header:[ "col"; "value" ]
          [ [ "a"; "1" ]; [ "longer"; "2" ] ])
  in
  Alcotest.(check bool) "title present" true
    (String.length output > 0
     && Astring.String.is_infix ~affix:"== demo" output);
  Alcotest.(check bool) "cells padded" true
    (Astring.String.is_infix ~affix:"| longer | 2     |" output)

let test_table_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Report.table: row arity mismatch") (fun () ->
      Report.table ~title:"bad" ~header:[ "a"; "b" ] [ [ "only" ] ])

let test_csv_mirroring () =
  let dir = Filename.temp_file "mv_csv" "" in
  Sys.remove dir;
  Report.set_csv_dir (Some dir);
  Fun.protect
    ~finally:(fun () -> Report.set_csv_dir None)
    (fun () ->
       ignore
         (with_capture (fun () ->
              Report.table ~title:"My Table (x/y)" ~header:[ "a"; "b" ]
                [ [ "1,5"; "plain" ] ])));
  let files = Sys.readdir dir in
  Alcotest.(check int) "one csv written" 1 (Array.length files);
  let ic = open_in (Filename.concat dir files.(0)) in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "csv quoted" "a,b\n\"1,5\",plain\n" contents

let test_cells () =
  Alcotest.(check string) "float" "1.234" (Report.float_cell 1.2341);
  Alcotest.(check string) "inf" "inf" (Report.float_cell infinity);
  Alcotest.(check string) "nan" "nan" (Report.float_cell nan);
  Alcotest.(check string) "percent" "12.35%" (Report.percent_cell 0.12345)

let test_aut_file_round_trip () =
  let spec =
    Mv_calc.Parser.spec_of_string_checked "process P := a ; b ; P\ninit P"
  in
  let lts = Mv_calc.State_space.lts spec in
  let path = Filename.temp_file "mv_aut" ".aut" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Mv_lts.Aut.write_file path lts;
       let back = Mv_lts.Aut.read_file path in
       Alcotest.(check bool) "equivalent after file round trip" true
         (Mv_bisim.Strong.equivalent lts back))

(* the text generators of the case studies produce valid, re-parseable
   MVL: print the generated spec and check behavioural equality *)
let test_generated_specs_round_trip () =
  let specs =
    [
      Mv_fame.Numa.spec ~nodes:3 Mv_fame.Topology.Ring Mv_fame.Numa.Token_ring
        ~rates:Mv_fame.Benchmark.default_rates;
      Mv_fame.Mpi_program.spec
        ~programs:(Mv_fame.Mpi_program.pingpong ~partner:1 ~size:1)
        Mv_fame.Topology.Crossbar ~rates:Mv_fame.Benchmark.default_rates;
      Mv_faust.Mesh.spec Mv_faust.Mesh.Shared_buffer
        ~flows:Mv_faust.Mesh.crossing_flows;
      Mv_xstream.Queues.spill ~arrival:2.0 ~service:3.0 ~refill:1.0
        ~hw_capacity:2 ~spill_capacity:2;
    ]
  in
  List.iter
    (fun spec ->
       let printed = Mv_calc.Ast.spec_to_string spec in
       let reparsed = Mv_calc.Parser.spec_of_string_checked printed in
       Alcotest.(check bool) "round-tripped generated spec" true
         (Mv_bisim.Strong.equivalent
            (Mv_calc.State_space.lts spec)
            (Mv_calc.State_space.lts reparsed)))
    specs

let suite =
  [
    Alcotest.test_case "table layout" `Quick test_table_layout;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "csv mirroring" `Quick test_csv_mirroring;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "aut file round trip" `Quick test_aut_file_round_trip;
    Alcotest.test_case "generated specs re-parse" `Quick
      test_generated_specs_round_trip;
  ]
