(* Tests for mv_bisim: strong and branching minimization, quotients,
   equivalence checking, and soundness properties on random LTSs. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Strong = Mv_bisim.Strong
module Branching = Mv_bisim.Branching
module Partition = Mv_bisim.Partition

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned

let test_strong_collapses_duplicates () =
  (* two states with identical behaviour collapse *)
  let lts =
    build ~nb_states:3 ~initial:0
      [ (0, "a", 1); (0, "a", 2); (1, "b", 0); (2, "b", 0) ]
  in
  let minimized = Strong.minimize lts in
  Alcotest.(check int) "2 states" 2 (Lts.nb_states minimized);
  Alcotest.(check int) "2 transitions" 2 (Lts.nb_transitions minimized)

let test_strong_distinguishes () =
  (* same labels, different continuations: no collapse *)
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "a", 2); (1, "b", 3); (2, "c", 3) ]
  in
  let minimized = Strong.minimize lts in
  Alcotest.(check int) "no collapse" 4 (Lts.nb_states minimized)

let test_strong_keeps_tau () =
  (* strong bisimulation treats tau like any label *)
  let with_tau = build ~nb_states:2 ~initial:0 [ (0, "i", 1); (1, "a", 1) ] in
  let without = build ~nb_states:1 ~initial:0 [ (0, "a", 0) ] in
  Alcotest.(check bool) "tau distinguishes strongly" false
    (Strong.equivalent with_tau without)

let test_branching_removes_inert_tau () =
  (* a ; i ; b is branching-equivalent to a ; b *)
  let with_tau =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "i", 2); (2, "b", 0) ]
  in
  let without = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "b", 0) ] in
  Alcotest.(check bool) "branching equivalent" true
    (Branching.equivalent with_tau without);
  let minimized = Branching.minimize with_tau in
  Alcotest.(check int) "2 states" 2 (Lts.nb_states minimized)

let test_branching_preserves_choice () =
  (* i before a choice is NOT inert if it pre-empts the choice:
     a + i;b  vs  a + b are different modulo branching *)
  let preempting =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (0, "i", 2); (2, "b", 1) ]
  in
  let flat = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (0, "b", 1) ] in
  Alcotest.(check bool) "pre-empting tau matters" false
    (Branching.equivalent preempting flat)

let test_branching_tau_cycle () =
  (* tau cycles collapse (divergence-blind) *)
  let cycle =
    build ~nb_states:3 ~initial:0 [ (0, "i", 1); (1, "i", 0); (1, "a", 2) ]
  in
  let direct = build ~nb_states:2 ~initial:0 [ (0, "a", 1) ] in
  Alcotest.(check bool) "cycle collapses" true (Branching.equivalent cycle direct);
  Alcotest.(check bool) "divergence detected" false (Branching.divergence_free cycle);
  Alcotest.(check bool) "direct divergence free" true
    (Branching.divergence_free direct)

let test_equivalence_negative () =
  let a = build ~nb_states:2 ~initial:0 [ (0, "a", 1) ] in
  let b = build ~nb_states:2 ~initial:0 [ (0, "b", 1) ] in
  Alcotest.(check bool) "different labels" false (Strong.equivalent a b);
  Alcotest.(check bool) "branching too" false (Branching.equivalent a b)

let test_partition_api () =
  let p = Partition.trivial 4 in
  Alcotest.(check int) "one block" 1 p.Partition.count;
  let q = Partition.of_classes ~nb_states:4 (fun s -> s mod 2) in
  Alcotest.(check int) "two blocks" 2 q.Partition.count;
  Alcotest.(check bool) "same parity together" true (Partition.same_block q 0 2);
  Alcotest.(check bool) "different parity apart" false (Partition.same_block q 0 1)

(* ---- weak (observational) bisimulation ---- *)

let test_weak_absorbs_tau () =
  (* a;i;b is weakly equivalent to a;b *)
  let with_tau =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "i", 2); (2, "b", 0) ]
  in
  let without = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "b", 0) ] in
  Alcotest.(check bool) "weakly equivalent" true
    (Mv_bisim.Weak.equivalent with_tau without);
  Alcotest.(check int) "minimized" 2
    (Lts.nb_states (Mv_bisim.Weak.minimize with_tau))

let test_weak_coarser_than_branching () =
  (* the classical example separating weak from branching:
     a.(b + tau.c)  vs  a.(b + tau.c) + a.c
     These are weakly bisimilar but NOT branching bisimilar. *)
  let p =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (1, "b", 2); (1, "i", 3); (3, "c", 2) ]
  in
  let q =
    build ~nb_states:5 ~initial:0
      [ (0, "a", 1); (1, "b", 2); (1, "i", 3); (3, "c", 2); (0, "a", 4);
        (4, "c", 2) ]
  in
  Alcotest.(check bool) "weakly equivalent" true (Mv_bisim.Weak.equivalent p q);
  Alcotest.(check bool) "not branching equivalent" false
    (Branching.equivalent p q)

let test_weak_preserves_choice () =
  (* tau pre-empting a choice still matters weakly *)
  let preempting =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (0, "i", 2); (2, "b", 1) ]
  in
  let flat = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (0, "b", 1) ] in
  Alcotest.(check bool) "not weakly equivalent" false
    (Mv_bisim.Weak.equivalent preempting flat)

let test_divergence_sensitive () =
  (* a.(tau-loop) vs a.stop: blind branching equates them (modulo the
     deadlock...), the livelock-preserving variant must not equate
     tau-loop with progress *)
  let livelock =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "i", 1); (1, "b", 2) ]
  in
  let progress = build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "b", 2) ] in
  Alcotest.(check bool) "blind branching equates" true
    (Branching.equivalent livelock progress);
  Alcotest.(check bool) "divbranching distinguishes" false
    (Branching.equivalent ~divergence_sensitive:true livelock progress);
  (* two divergent systems are still equated *)
  let livelock2 =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (1, "i", 3); (3, "i", 1); (1, "b", 2) ]
  in
  Alcotest.(check bool) "same divergence equated" true
    (Branching.equivalent ~divergence_sensitive:true livelock livelock2);
  (* the divergence-sensitive quotient keeps a tau self-loop *)
  let minimized = Branching.minimize ~divergence_sensitive:true livelock in
  let has_tau_loop = ref false in
  Lts.iter_transitions minimized (fun s l d ->
      if l = Mv_lts.Label.tau && s = d then has_tau_loop := true);
  Alcotest.(check bool) "livelock preserved in quotient" true !has_tau_loop;
  (* divergence propagates backwards through tau chains *)
  let reaches_livelock =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (1, "i", 3); (3, "i", 3); (1, "b", 2) ]
  in
  Alcotest.(check bool) "tau-reaching-divergence distinguished" false
    (Branching.equivalent ~divergence_sensitive:true reaches_livelock progress)

(* Random LTS generator for soundness properties. *)
let lts_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 1 12 in
    let* transitions =
      list_size (int_bound 30)
        (triple (int_bound (nb_states - 1))
           (oneofl [ "a"; "b"; "c"; "i" ])
           (int_bound (nb_states - 1)))
    in
    return (build ~nb_states ~initial:0 transitions))

let strong_sound_prop =
  QCheck2.Test.make ~name:"strong minimize: equivalent and idempotent" ~count:60
    lts_gen
    (fun lts ->
       let minimized = Strong.minimize lts in
       Strong.equivalent lts minimized
       && Lts.nb_states (Strong.minimize minimized) = Lts.nb_states minimized)

let branching_sound_prop =
  QCheck2.Test.make ~name:"branching minimize: equivalent and idempotent"
    ~count:60 lts_gen
    (fun lts ->
       let minimized = Branching.minimize lts in
       Branching.equivalent lts minimized
       && Lts.nb_states (Branching.minimize minimized) = Lts.nb_states minimized)

let branching_coarser_prop =
  QCheck2.Test.make ~name:"branching quotient no larger than strong" ~count:60
    lts_gen
    (fun lts ->
       Lts.nb_states (Branching.minimize lts)
       <= Lts.nb_states (Strong.minimize lts))

let strong_implies_branching_prop =
  QCheck2.Test.make ~name:"strongly equivalent implies branching equivalent"
    ~count:40
    (QCheck2.Gen.pair lts_gen lts_gen)
    (fun (a, b) ->
       (not (Strong.equivalent a b)) || Branching.equivalent a b)

let divbranching_finer_prop =
  QCheck2.Test.make
    ~name:"divergence-sensitive equivalent implies branching equivalent"
    ~count:40
    (QCheck2.Gen.pair lts_gen lts_gen)
    (fun (a, b) ->
       (not (Branching.equivalent ~divergence_sensitive:true a b))
       || Branching.equivalent a b)

let divbranching_sound_prop =
  QCheck2.Test.make
    ~name:"divergence-sensitive minimize: equivalent and idempotent" ~count:40
    lts_gen
    (fun lts ->
       let minimized = Branching.minimize ~divergence_sensitive:true lts in
       Branching.equivalent ~divergence_sensitive:true lts minimized
       && Lts.nb_states (Branching.minimize ~divergence_sensitive:true minimized)
          = Lts.nb_states minimized)

let weak_sound_prop =
  QCheck2.Test.make ~name:"weak minimize: equivalent and idempotent" ~count:40
    lts_gen
    (fun lts ->
       let minimized = Mv_bisim.Weak.minimize lts in
       Mv_bisim.Weak.equivalent lts minimized
       && Lts.nb_states (Mv_bisim.Weak.minimize minimized)
          = Lts.nb_states minimized)

let branching_implies_weak_prop =
  QCheck2.Test.make ~name:"branching equivalent implies weakly equivalent"
    ~count:40
    (QCheck2.Gen.pair lts_gen lts_gen)
    (fun (a, b) ->
       (not (Branching.equivalent a b)) || Mv_bisim.Weak.equivalent a b)

let weak_implies_traces_prop =
  QCheck2.Test.make ~name:"weakly equivalent implies trace equivalent"
    ~count:30
    (QCheck2.Gen.pair lts_gen lts_gen)
    (fun (a, b) ->
       (not (Mv_bisim.Weak.equivalent a b)) || Mv_bisim.Traces.equivalent a b)

let suite =
  [
    Alcotest.test_case "strong collapses duplicates" `Quick
      test_strong_collapses_duplicates;
    Alcotest.test_case "strong distinguishes" `Quick test_strong_distinguishes;
    Alcotest.test_case "strong keeps tau" `Quick test_strong_keeps_tau;
    Alcotest.test_case "branching removes inert tau" `Quick
      test_branching_removes_inert_tau;
    Alcotest.test_case "branching preserves choice" `Quick
      test_branching_preserves_choice;
    Alcotest.test_case "branching collapses tau cycles" `Quick
      test_branching_tau_cycle;
    Alcotest.test_case "inequivalence detected" `Quick test_equivalence_negative;
    Alcotest.test_case "partition api" `Quick test_partition_api;
    QCheck_alcotest.to_alcotest strong_sound_prop;
    QCheck_alcotest.to_alcotest branching_sound_prop;
    QCheck_alcotest.to_alcotest branching_coarser_prop;
    QCheck_alcotest.to_alcotest strong_implies_branching_prop;
    Alcotest.test_case "weak absorbs tau" `Quick test_weak_absorbs_tau;
    Alcotest.test_case "weak coarser than branching" `Quick
      test_weak_coarser_than_branching;
    Alcotest.test_case "weak preserves choice" `Quick test_weak_preserves_choice;
    Alcotest.test_case "divergence-sensitive branching" `Quick
      test_divergence_sensitive;
    QCheck_alcotest.to_alcotest weak_sound_prop;
    QCheck_alcotest.to_alcotest divbranching_finer_prop;
    QCheck_alcotest.to_alcotest divbranching_sound_prop;
    QCheck_alcotest.to_alcotest branching_implies_weak_prop;
    QCheck_alcotest.to_alcotest weak_implies_traces_prop;
  ]
