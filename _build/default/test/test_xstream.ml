(* Tests for mv_xstream: analytic formulas, queue models, occupancy
   extraction, and the injected functional issues. *)

module Analytic = Mv_xstream.Analytic
module Queues = Mv_xstream.Queues
module Measures = Mv_xstream.Measures
module State_space = Mv_calc.State_space
module Lts = Mv_lts.Lts

let close ?(eps = 1e-8) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g, got %.8g" msg expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let test_analytic_formulas () =
  let arrival = 2.0 and service = 3.0 and k = 4 in
  let pi = Analytic.pi ~arrival ~service ~k in
  close "mass" 1.0 (Array.fold_left ( +. ) 0.0 pi);
  (* rho = 2/3: pi_m proportional to rho^m *)
  close "geometric" (pi.(1) /. pi.(0)) (arrival /. service);
  close "blocking" pi.(k) (Analytic.blocking ~arrival ~service ~k);
  close "throughput"
    (arrival *. (1.0 -. pi.(k)))
    (Analytic.throughput ~arrival ~service ~k);
  (* Little's law consistency *)
  close "little"
    (Analytic.mean_jobs ~arrival ~service ~k
     /. Analytic.throughput ~arrival ~service ~k)
    (Analytic.mean_latency ~arrival ~service ~k)

let test_analytic_rho_one () =
  (* rho = 1: uniform distribution *)
  let pi = Analytic.pi ~arrival:2.0 ~service:2.0 ~k:3 in
  Array.iter (fun p -> close "uniform" 0.25 p) pi

let test_single_queue_end_to_end () =
  let arrival = 2.0 and service = 3.0 and capacity = 3 in
  let spec = Queues.single ~arrival ~service ~capacity in
  let s = Measures.summary spec ~capacity in
  let k = Queues.system_capacity ~capacity in
  close ~eps:1e-7 "throughput matches M/M/1/K"
    (Analytic.throughput ~arrival ~service ~k)
    s.Measures.throughput;
  Alcotest.(check bool) "occupancy in range" true
    (s.Measures.mean_occupancy >= 0.0
     && s.Measures.mean_occupancy <= float_of_int capacity);
  Alcotest.(check bool) "latency = occ/throughput" true
    (abs_float
       (s.Measures.mean_latency
        -. (s.Measures.mean_occupancy /. s.Measures.throughput))
     < 1e-9)

let test_occupancy_distribution_matches_system_states () =
  (* the queue-occupancy marginal relates to the M/M/1/K system-state
     distribution: a queue of n jobs corresponds to n+1 jobs in system
     (one in the consumer), except at the boundaries *)
  let arrival = 2.0 and service = 3.0 and capacity = 3 in
  let spec = Queues.single ~arrival ~service ~capacity in
  let dist = Measures.occupancy_distribution spec ~capacity in
  let k = Queues.system_capacity ~capacity in
  let pi = Analytic.pi ~arrival ~service ~k in
  close "mass" 1.0 (Array.fold_left ( +. ) 0.0 dist);
  (* occupancy 0 <-> system states 0 or 1 *)
  close ~eps:1e-7 "occ 0" (pi.(0) +. pi.(1)) dist.(0);
  (* middle occupancies map one-to-one *)
  for n = 1 to capacity - 1 do
    close ~eps:1e-7 (Printf.sprintf "occ %d" n) pi.(n + 1) dist.(n)
  done;
  (* full queue <-> system states K-1 and K *)
  close ~eps:1e-7 "occ full" (pi.(k - 1) +. pi.(k)) dist.(capacity)

let test_occupancy_of_term () =
  let spec = Queues.single ~arrival:1.0 ~service:1.0 ~capacity:2 in
  Alcotest.(check (option int)) "initial occupancy" (Some 0)
    (Measures.occupancy_of_term ~queue:"Queue" spec.Mv_calc.Ast.init);
  Alcotest.(check (option int)) "missing process" None
    (Measures.occupancy_of_term ~queue:"Nope" spec.Mv_calc.Ast.init)

let test_tandem_generates () =
  let spec =
    Queues.tandem ~arrival:1.0 ~transfer:2.0 ~service:3.0 ~capacity1:2
      ~capacity2:2
  in
  let perf = Mv_core.Flow.performance ~keep:[ "pop" ] spec in
  let tput = Mv_core.Flow.throughput perf ~gate:"pop" in
  (* stable tandem: throughput equals the arrival rate minus losses;
     it must be positive and below the arrival rate *)
  Alcotest.(check bool) "positive" true (tput > 0.0);
  Alcotest.(check bool) "below arrival" true (tput < 1.0)

let test_credit_queue_bounded () =
  let credits = 2 in
  let spec = Queues.credit ~arrival:2.0 ~service:1.0 ~capacity:4 ~credits in
  let dist = Measures.occupancy_distribution spec ~capacity:4 in
  (* with c credits the queue never exceeds c *)
  for n = credits + 1 to 4 do
    close (Printf.sprintf "occupancy %d unreachable" n) 0.0 dist.(n)
  done

let test_fifo_reference_properties () =
  let lts = State_space.lts (Queues.fifo_data ()) in
  Alcotest.(check (list int)) "no deadlock" [] (Lts.deadlocks lts);
  (* FIFO order: after push!0 push!1, the first pop is pop!0 *)
  let ordered =
    Mv_mcl.Parser.formula_of_string
      "[\"push !0\"] [\"push !1\"] [\"pop !1\"] false"
  in
  Alcotest.(check bool) "order preserved" true (Mv_mcl.Eval.holds lts ordered)

let test_functional_issues_detected () =
  let reference = State_space.lts (Queues.fifo_data ()) in
  let lossy = State_space.lts (Queues.fifo_lossy ()) in
  let unordered = State_space.lts (Queues.fifo_unordered ()) in
  Alcotest.(check bool) "reference self-equivalent" true
    (Mv_bisim.Branching.equivalent reference reference);
  Alcotest.(check bool) "lossy caught" false
    (Mv_bisim.Branching.equivalent reference lossy);
  Alcotest.(check bool) "unordered caught" false
    (Mv_bisim.Branching.equivalent reference unordered);
  (* the order property also catches the unordered variant directly *)
  let ordered =
    Mv_mcl.Parser.formula_of_string
      "[\"push !0\"] [\"push !1\"] [\"pop !1\"] false"
  in
  Alcotest.(check bool) "unordered violates FIFO order" false
    (Mv_mcl.Eval.holds unordered ordered)

let test_multi_producer_conservation () =
  let spec =
    Queues.multi_producer ~arrival0:1.0 ~arrival1:2.0 ~service:4.0 ~capacity:3
  in
  let perf = Mv_core.Flow.performance ~keep:[ "push0"; "push1"; "pop" ] spec in
  let t g = Mv_core.Flow.throughput perf ~gate:g in
  close ~eps:1e-8 "flow conservation" (t "pop") (t "push0" +. t "push1");
  Alcotest.(check bool) "both producers progress" true
    (t "push0" > 0.0 && t "push1" > 0.0);
  Alcotest.(check bool) "faster producer pushes more" true
    (t "push1" > t "push0")

let test_spill_refill_throttles () =
  let summary refill =
    Mv_xstream.Measures.spill_summary
      (Queues.spill ~arrival:2.0 ~service:3.0 ~refill ~hw_capacity:2
         ~spill_capacity:4)
  in
  let slow = summary 0.5 and fast = summary 8.0 in
  Alcotest.(check bool) "slow refill throttles throughput" true
    (slow.Measures.spill_throughput < fast.Measures.spill_throughput);
  Alcotest.(check bool) "slow refill parks more in memory" true
    (slow.Measures.mean_spilled > fast.Measures.mean_spilled);
  Alcotest.(check bool) "probabilities sane" true
    (slow.Measures.spilling > 0.0 && slow.Measures.spilling < 1.0);
  (* fast refill approaches the unspilled queue of combined capacity *)
  let reference =
    (Measures.summary
       (Queues.single ~arrival:2.0 ~service:3.0 ~capacity:6)
       ~capacity:6)
      .Measures.throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "fast refill near unspilled (%.4f vs %.4f)"
       fast.Measures.spill_throughput reference)
    true
    (abs_float (fast.Measures.spill_throughput -. reference) < 0.05)

let test_dual_server_lumping () =
  let spec = Queues.dual_server ~arrival:3.0 ~service:2.0 in
  let perf = Mv_core.Flow.performance ~keep:[ "done" ] spec in
  (* the two engines are symmetric: lumping must strictly reduce *)
  Alcotest.(check bool) "lumping reduces" true
    (Mv_imc.Imc.nb_states perf.Mv_core.Flow.lumped
     < Mv_imc.Imc.nb_states perf.Mv_core.Flow.imc);
  (* two parallel engines outperform a single one at the same rates *)
  let single =
    Mv_core.Flow.performance ~keep:[ "done" ]
      (Mv_core.Flow.model_of_text
         {|
process Source := rate 3.0 ; grab ; Source
process Engine := grab ; rate 2.0 ; done ; Engine
init Source |[grab]| Engine
|})
  in
  let t2 = Mv_core.Flow.throughput perf ~gate:"done" in
  let t1 = Mv_core.Flow.throughput single ~gate:"done" in
  Alcotest.(check bool)
    (Printf.sprintf "2 engines (%.3f) beat 1 (%.3f)" t2 t1)
    true (t2 > t1)

let test_credit_equivalence_theorem () =
  (* With the token round hidden, a credit-windowed queue of c credits
     behaves exactly like a plain c-place queue, whatever the physical
     capacity: the little theorem behind credit-based flow control. *)
  let credit_text c k =
    Printf.sprintf
      {|
process Credits (c : int[0..%d]) :=
    [c > 0] -> grant ; Credits(c - 1)
 [] [c < %d] -> free ; Credits(c + 1)
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
process Producer := grant ; push ; Producer
process Consumer := pop ; free ; Consumer
init hide grant, free in
  ((Producer |[grant, push]| (Credits(%d) ||| Queue(0))) |[pop, free]| Consumer)
|}
      c c k k c
  in
  let plain c =
    Printf.sprintf
      {|
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init Queue(0)
|}
      c c
  in
  List.iter
    (fun (c, k) ->
       let windowed =
         Mv_calc.State_space.lts (Mv_calc.Parser.spec_of_string_checked (credit_text c k))
       in
       let reference =
         Mv_calc.State_space.lts (Mv_calc.Parser.spec_of_string_checked (plain c))
       in
       Alcotest.(check bool)
         (Printf.sprintf "credits %d over capacity %d == plain %d-queue" c k c)
         true
         (Mv_bisim.Branching.equivalent windowed reference))
    [ (1, 3); (2, 4); (3, 3) ]

(* Property: the full pipeline matches M/M/1/K throughput across a
   parameter sweep. *)
let pipeline_matches_analytic_prop =
  let gen =
    QCheck2.Gen.(
      triple (float_range 0.5 4.0) (float_range 0.5 4.0) (int_range 1 4))
  in
  QCheck2.Test.make ~name:"pipeline throughput = M/M/1/K closed form" ~count:15
    gen
    (fun (arrival, service, capacity) ->
       let spec = Queues.single ~arrival ~service ~capacity in
       let perf = Mv_core.Flow.performance ~keep:[ "pop" ] spec in
       let tput = Mv_core.Flow.throughput perf ~gate:"pop" in
       let k = Queues.system_capacity ~capacity in
       let expected = Analytic.throughput ~arrival ~service ~k in
       abs_float (tput -. expected) /. expected < 1e-6)

let suite =
  [
    Alcotest.test_case "analytic formulas" `Quick test_analytic_formulas;
    Alcotest.test_case "analytic rho=1" `Quick test_analytic_rho_one;
    Alcotest.test_case "single queue end to end" `Quick
      test_single_queue_end_to_end;
    Alcotest.test_case "occupancy vs system states" `Quick
      test_occupancy_distribution_matches_system_states;
    Alcotest.test_case "occupancy_of_term" `Quick test_occupancy_of_term;
    Alcotest.test_case "tandem" `Quick test_tandem_generates;
    Alcotest.test_case "credit flow control bounds occupancy" `Quick
      test_credit_queue_bounded;
    Alcotest.test_case "FIFO reference properties" `Quick
      test_fifo_reference_properties;
    Alcotest.test_case "functional issues detected" `Quick
      test_functional_issues_detected;
    QCheck_alcotest.to_alcotest pipeline_matches_analytic_prop;
    Alcotest.test_case "multi-producer arbitration" `Quick
      test_multi_producer_conservation;
    Alcotest.test_case "dual server: lumping + speedup" `Quick
      test_dual_server_lumping;
    Alcotest.test_case "spill/refill queue" `Quick test_spill_refill_throttles;
    Alcotest.test_case "credit window theorem" `Quick
      test_credit_equivalence_theorem;
  ]
