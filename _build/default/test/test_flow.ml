(* End-to-end tests of the Multival flow (mv_core): verification and
   performance pipelines validated against closed forms and the
   simulator. *)

module Flow = Mv_core.Flow
module Ctmc = Mv_markov.Ctmc
module To_ctmc = Mv_imc.To_ctmc

let close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g, got %.8g" msg expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let mm1_text ~arrival ~service ~capacity =
  Printf.sprintf
    {|
process Producer := rate %.12g ; push ; Producer
process Consumer := pop ; rate %.12g ; Consumer
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}
    arrival service capacity capacity

let test_model_of_text_errors () =
  (try
     ignore (Flow.model_of_text "init [2] -> stop");
     Alcotest.fail "expected Type_error"
   with Mv_calc.Typecheck.Type_error _ -> ());
  try
    ignore (Flow.model_of_text "???");
    Alcotest.fail "expected Parse_error"
  with Mv_calc.Parser.Parse_error _ -> ()

let test_verify_pipeline () =
  let spec = Flow.model_of_text (mm1_text ~arrival:1.0 ~service:2.0 ~capacity:2) in
  let v =
    Flow.verify ~hide:[ "push" ] spec
      [
        ("deadlock free", Mv_mcl.Formula.Macro.deadlock_free);
        ( "pop reachable",
          Mv_mcl.Formula.Macro.possibly
            (Mv_mcl.Formula.Macro.can_do (Mv_mcl.Action_formula.Gate "pop")) );
        ("never pops", Mv_mcl.Formula.Macro.never (Mv_mcl.Action_formula.Gate "pop"));
      ]
  in
  Alcotest.(check (list int)) "no deadlocks" [] v.Flow.deadlock_states;
  Alcotest.(check bool) "all_hold is false (one property fails)" false
    (Flow.all_hold v);
  let expected = [ true; true; false ] in
  List.iter2
    (fun r e -> Alcotest.(check bool) r.Flow.property_name e r.Flow.holds)
    v.Flow.results expected;
  Alcotest.(check bool) "minimized smaller or equal" true
    (Mv_lts.Lts.nb_states v.Flow.minimized <= Mv_lts.Lts.nb_states v.Flow.lts)

let test_performance_matches_analytic () =
  let arrival = 2.0 and service = 3.0 and capacity = 3 in
  let spec = Flow.model_of_text (mm1_text ~arrival ~service ~capacity) in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  let k = capacity + 2 in
  close ~eps:1e-8 "throughput"
    (Mv_xstream.Analytic.throughput ~arrival ~service ~k)
    (Flow.throughput perf ~gate:"pop")

let test_performance_lumping_consistent () =
  let arrival = 2.0 and service = 3.0 and capacity = 3 in
  let spec = Flow.model_of_text (mm1_text ~arrival ~service ~capacity) in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  (* computing on the unlumped IMC gives the same throughput *)
  let hidden =
    Mv_imc.Imc.hide perf.Flow.imc ~gates:[ "push" ]
  in
  let conv = To_ctmc.convert (Mv_imc.Imc.maximal_progress hidden) in
  let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
  let direct = Ctmc.throughput conv.To_ctmc.ctmc ~pi ~action:"pop" in
  close ~eps:1e-8 "lumped = unlumped" direct (Flow.throughput perf ~gate:"pop");
  Alcotest.(check bool) "lumping reduced states" true
    (Mv_imc.Imc.nb_states perf.Flow.lumped <= Mv_imc.Imc.nb_states perf.Flow.imc)

let test_time_to_first () =
  (* the pop rendezvous fires the instant the first job reaches the
     consumer, i.e. right after the first arrival: mean = 1/a *)
  let arrival = 2.0 and service = 5.0 in
  let spec = Flow.model_of_text (mm1_text ~arrival ~service ~capacity:2) in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  close ~eps:1e-8 "mean time to first pop" (1.0 /. arrival)
    (Flow.time_to_first perf ~gate:"pop");
  Alcotest.(check bool) "absent gate never occurs" true
    (Flow.time_to_first perf ~gate:"no_such_gate" = infinity);
  let p_small = Flow.probability_by perf ~gate:"pop" ~horizon:0.01 in
  let p_large = Flow.probability_by perf ~gate:"pop" ~horizon:100.0 in
  Alcotest.(check bool) "cdf monotone" true (p_small < p_large);
  Alcotest.(check bool) "cdf -> 1" true (p_large > 0.999)

let test_throughputs_listing () =
  let spec = Flow.model_of_text (mm1_text ~arrival:2.0 ~service:3.0 ~capacity:2) in
  let perf = Flow.performance ~keep:[ "pop"; "push" ] spec in
  let listed = Flow.throughputs perf in
  Alcotest.(check int) "two visible actions" 2 (List.length listed);
  (* flow conservation: push and pop rates agree in steady state *)
  let find gate = List.assoc gate listed in
  close ~eps:1e-8 "conservation" (find "push") (find "pop")

let test_performance_vs_simulation () =
  let arrival = 2.0 and service = 3.0 and capacity = 3 in
  let spec = Flow.model_of_text (mm1_text ~arrival ~service ~capacity) in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  let numeric = Flow.throughput perf ~gate:"pop" in
  let simulated =
    Mv_sim.Des.throughput perf.Flow.imc ~action:"pop" ~horizon:20_000.0
      ~seed:31L
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs numeric %.4f" simulated numeric)
    true
    (abs_float (simulated -. numeric) /. numeric < 0.05)

let test_expected_reward () =
  let spec = Flow.model_of_text (mm1_text ~arrival:2.0 ~service:3.0 ~capacity:2) in
  let perf = Flow.performance spec in
  close ~eps:1e-9 "unit reward" 1.0 (Flow.expected_reward perf (fun _ -> 1.0))

let test_delay_insertion_methodology () =
  (* The paper's compositional decoration (SS4): (1) localize the
     delay, (2) expose its start and end as gates, (3) instantiate it
     by synchronizing with an auxiliary phase-type process. The result
     must match writing the rate inline. *)
  let inline =
    Flow.model_of_text
      {|
process Worker := begin_work ; rate 4.0 ; end_work ; done ; Worker
init Worker
|}
  in
  let decorated_text =
    {|
process Worker := begin_work ; end_work ; done ; Worker
init hide begin_work, end_work in (Worker |[begin_work, end_work]| Delay)
|}
  in
  (* parse unchecked (Delay is provided programmatically), then check *)
  let with_delay delay_process =
    let spec = Mv_calc.Parser.spec_of_string decorated_text in
    let spec =
      { spec with
        Mv_calc.Ast.processes = delay_process :: spec.Mv_calc.Ast.processes }
    in
    Mv_calc.Typecheck.check_spec spec;
    spec
  in
  let decorated =
    with_delay
      (Mv_imc.Phase.process (Mv_imc.Phase.Exponential 4.0) ~name:"Delay"
         ~start:"begin_work" ~finish:"end_work")
  in
  let t1 =
    Flow.throughput (Flow.performance ~keep:[ "done" ] decorated) ~gate:"done"
  in
  let t2 =
    Flow.throughput
      (Flow.performance
         ~keep:[ "done" ]
         { inline with
           Mv_calc.Ast.init =
             Mv_calc.Ast.Hide ([ "begin_work"; "end_work" ], inline.Mv_calc.Ast.init) })
      ~gate:"done"
  in
  close ~eps:1e-9 "decorated = inline" t2 t1;
  close ~eps:1e-9 "rate value" 4.0 t1;
  (* an Erlang-3 delay through the same methodology has the same mean,
     hence the same renewal throughput *)
  let decorated_erlang =
    with_delay
      (Mv_imc.Phase.process (Mv_imc.Phase.Erlang (3, 12.0)) ~name:"Delay"
         ~start:"begin_work" ~finish:"end_work")
  in
  let t3 =
    Flow.throughput
      (Flow.performance ~keep:[ "done" ] decorated_erlang)
      ~gate:"done"
  in
  close ~eps:1e-9 "erlang same mean, same throughput" 4.0 t3

let test_witnesses () =
  let deadlocking = Flow.model_of_text "init a ; b ; stop" in
  let v = Flow.verify deadlocking [] in
  (match Flow.deadlock_witness v with
   | Some t ->
     Alcotest.(check (list string)) "deadlock witness" [ "a"; "b" ]
       t.Mv_lts.Trace.labels
   | None -> Alcotest.fail "expected deadlock");
  (match Flow.action_witness v ~gate:"b" with
   | Some t ->
     Alcotest.(check (list string)) "action witness" [ "a"; "b" ]
       t.Mv_lts.Trace.labels
   | None -> Alcotest.fail "b reachable");
  Alcotest.(check bool) "absent action" true
    (Flow.action_witness v ~gate:"zz" = None);
  let live = Flow.model_of_text "process P := a ; P\ninit P" in
  Alcotest.(check bool) "no deadlock, no witness" true
    (Flow.deadlock_witness (Flow.verify live []) = None)

let test_generate_compositional () =
  (* a 4-stage buffer chain written as one MVL spec: the compositional
     generator must agree with the monolithic one and keep the peak
     smaller *)
  let text =
    {|
process Buf [input, output] (n : int[0..2]) :=
    [n < 2] -> input ; Buf[input, output](n + 1)
 [] [n > 0] -> output ; Buf[input, output](n - 1)
init hide g1 in ((hide g2 in ((Buf[g0, g1](0) |[g1]| Buf[g1, g2](0)) |[g2]| Buf[g2, g3](0))))
|}
  in
  let spec = Flow.model_of_text text in
  let monolithic = Flow.generate spec in
  let report = Flow.generate_compositional spec in
  Alcotest.(check bool) "branching equivalent" true
    (Mv_bisim.Branching.equivalent monolithic report.Mv_compose.Net.result);
  Alcotest.(check bool) "peak not larger" true
    (report.Mv_compose.Net.peak_states <= Mv_lts.Lts.nb_states monolithic);
  Alcotest.(check bool) "really split" true
    (List.length report.Mv_compose.Net.steps > 3)

let suite =
  [
    Alcotest.test_case "model_of_text errors" `Quick test_model_of_text_errors;
    Alcotest.test_case "verification pipeline" `Quick test_verify_pipeline;
    Alcotest.test_case "performance vs closed form" `Quick
      test_performance_matches_analytic;
    Alcotest.test_case "lumping consistency" `Quick
      test_performance_lumping_consistent;
    Alcotest.test_case "time to first action" `Quick test_time_to_first;
    Alcotest.test_case "throughput listing + conservation" `Quick
      test_throughputs_listing;
    Alcotest.test_case "numeric vs simulation" `Slow test_performance_vs_simulation;
    Alcotest.test_case "expected reward" `Quick test_expected_reward;
    Alcotest.test_case "delay-insertion methodology (paper SS4)" `Quick
      test_delay_insertion_methodology;
    Alcotest.test_case "verification witnesses" `Quick test_witnesses;
    Alcotest.test_case "compositional generation" `Quick
      test_generate_compositional;
  ]
