(* Tests for the diagnostic layers: witness traces (Mv_lts.Trace) and
   weak-trace semantics (Mv_bisim.Traces). *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Trace = Mv_lts.Trace
module Traces = Mv_bisim.Traces

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned


(* ---- Trace ---- *)

let test_shortest_to_deadlock () =
  (* two routes to deadlock state 3: length 3 via 1-2, length 2 via 4 *)
  let lts =
    build ~nb_states:5 ~initial:0
      [ (0, "a", 1); (1, "b", 2); (2, "c", 3); (0, "x", 4); (4, "y", 3) ]
  in
  match Trace.shortest_to_deadlock lts with
  | None -> Alcotest.fail "deadlock exists"
  | Some t ->
    Alcotest.(check (list string)) "shortest" [ "x"; "y" ] t.Trace.labels;
    Alcotest.(check int) "destination" 3 t.Trace.destination

let test_no_deadlock_trace () =
  let lts = build ~nb_states:1 ~initial:0 [ (0, "a", 0) ] in
  Alcotest.(check bool) "no deadlock" true
    (Trace.shortest_to_deadlock lts = None)

let test_shortest_to_action () =
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (1, "error", 2); (0, "error", 3) ]
  in
  match Trace.shortest_to_action lts ~action:(fun l -> l = "error") with
  | None -> Alcotest.fail "error reachable"
  | Some t -> Alcotest.(check (list string)) "direct" [ "error" ] t.Trace.labels

let test_unreachable_goal () =
  let lts = build ~nb_states:2 ~initial:0 [ (0, "a", 0) ] in
  Alcotest.(check bool) "unreachable state" true
    (Trace.shortest_to_state lts ~goal:(fun s -> s = 1) = None);
  Alcotest.(check bool) "absent action" true
    (Trace.shortest_to_action lts ~action:(fun l -> l = "zz") = None)

let test_to_string () =
  let lts = build ~nb_states:2 ~initial:0 [ (0, "a", 1) ] in
  (match Trace.shortest_to_state lts ~goal:(fun s -> s = 1) with
   | Some t -> Alcotest.(check string) "rendering" "a" (Trace.to_string t)
   | None -> Alcotest.fail "reachable");
  match Trace.shortest_to_state lts ~goal:(fun s -> s = 0) with
  | Some t -> Alcotest.(check string) "empty" "<empty>" (Trace.to_string t)
  | None -> Alcotest.fail "initial"

(* ---- Traces (weak trace semantics) ---- *)

let test_determinize () =
  (* nondeterministic a-split determinizes to a single a-successor *)
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "a", 2); (1, "b", 3); (2, "c", 3) ]
  in
  let det = Traces.determinize lts in
  Alcotest.(check int) "merged successor" 1
    (Lts.fold_out det (Lts.initial det) (fun _ _ acc -> acc + 1) 0);
  Alcotest.(check bool) "still trace equivalent" true (Traces.equivalent lts det)

let test_determinize_tau_closure () =
  (* i;a and a have the same weak traces *)
  let with_tau = build ~nb_states:3 ~initial:0 [ (0, "i", 1); (1, "a", 2) ] in
  let direct = build ~nb_states:2 ~initial:0 [ (0, "a", 1) ] in
  Alcotest.(check bool) "tau closed" true (Traces.equivalent with_tau direct)

let test_trace_vs_bisimulation () =
  (* a;(b+c) vs a;b + a;c: trace equivalent but not branching
     equivalent - the classical separating example *)
  let merged =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "b", 2); (1, "c", 2) ]
  in
  let split =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "a", 2); (1, "b", 3); (2, "c", 3) ]
  in
  Alcotest.(check bool) "trace equivalent" true (Traces.equivalent merged split);
  Alcotest.(check bool) "not branching equivalent" false
    (Mv_bisim.Branching.equivalent merged split)

let test_inclusion_counterexample () =
  let spec = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "a", 0) ] in
  let impl =
    build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "a", 0); (1, "oops", 0) ]
  in
  Alcotest.(check bool) "spec included in impl" true (Traces.included spec impl);
  Alcotest.(check bool) "impl not included in spec" false
    (Traces.included impl spec);
  Alcotest.(check (option (list string))) "counterexample" (Some [ "a"; "oops" ])
    (Traces.counterexample impl spec)

let test_lossy_fifo_trace_level () =
  (* reordering is visible at trace level *)
  let reference = Mv_calc.State_space.lts (Mv_xstream.Queues.fifo_data ()) in
  let unordered = Mv_calc.State_space.lts (Mv_xstream.Queues.fifo_unordered ()) in
  Alcotest.(check bool) "reorder produces new traces" false
    (Traces.included unordered reference);
  match Traces.counterexample unordered reference with
  | None -> Alcotest.fail "expected counterexample"
  | Some trace ->
    (* the witness must end with an out-of-order pop *)
    Alcotest.(check bool) "witness mentions pop" true
      (List.exists (fun l -> Mv_lts.Label.gate l = "pop") trace)

let suite =
  [
    Alcotest.test_case "shortest trace to deadlock" `Quick
      test_shortest_to_deadlock;
    Alcotest.test_case "no deadlock, no trace" `Quick test_no_deadlock_trace;
    Alcotest.test_case "shortest trace to action" `Quick test_shortest_to_action;
    Alcotest.test_case "unreachable goal" `Quick test_unreachable_goal;
    Alcotest.test_case "trace rendering" `Quick test_to_string;
    Alcotest.test_case "determinize" `Quick test_determinize;
    Alcotest.test_case "determinize tau closure" `Quick
      test_determinize_tau_closure;
    Alcotest.test_case "trace vs bisimulation" `Quick test_trace_vs_bisimulation;
    Alcotest.test_case "inclusion + counterexample" `Quick
      test_inclusion_counterexample;
    Alcotest.test_case "queue issues at trace level" `Quick
      test_lossy_fifo_trace_level;
  ]
