(* Tests for mv_mcl: action formulas, mu-calculus evaluation, macros,
   the formula parser, and well-formedness checking. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Formula = Mv_mcl.Formula
module Action = Mv_mcl.Action_formula
module Eval = Mv_mcl.Eval
module Parser = Mv_mcl.Parser
module Bitset = Mv_util.Bitset

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned

(* a small traffic-light-ish LTS:
   0 -go-> 1 -work !1-> 2 -done-> 0, plus 2 -i-> 3 (dead end) *)
let example =
  build ~nb_states:4 ~initial:0
    [ (0, "go", 1); (1, "work !1", 2); (2, "done", 0); (2, "i", 3) ]

let sat_list lts f = Bitset.to_list (Eval.sat lts f)

let test_action_formulas () =
  let labels = Lts.labels example in
  let work = Option.get (Label.find labels "work !1") in
  Alcotest.(check bool) "Any" true (Action.matches labels Action.Any work);
  Alcotest.(check bool) "None_" false (Action.matches labels Action.None_ work);
  Alcotest.(check bool) "Gate" true (Action.matches labels (Action.Gate "work") work);
  Alcotest.(check bool) "Name" true
    (Action.matches labels (Action.Name "work !1") work);
  Alcotest.(check bool) "Name mismatch" false
    (Action.matches labels (Action.Name "work") work);
  Alcotest.(check bool) "Tau" true (Action.matches labels Action.Tau Label.tau);
  Alcotest.(check bool) "Visible" false
    (Action.matches labels Action.Visible Label.tau);
  Alcotest.(check bool) "Not" false
    (Action.matches labels (Action.Not Action.Any) work);
  Alcotest.(check bool) "And" true
    (Action.matches labels (Action.And (Action.Gate "work", Action.Visible)) work);
  Alcotest.(check bool) "Or" true
    (Action.matches labels (Action.Or (Action.Tau, Action.Gate "work")) work)

let test_modalities () =
  Alcotest.(check (list int)) "<go> true" [ 0 ]
    (sat_list example (Formula.Diamond (Action.Gate "go", Formula.True)));
  (* [go] false holds exactly where no go-move exists *)
  Alcotest.(check (list int)) "[go] false" [ 1; 2; 3 ]
    (sat_list example (Formula.Box (Action.Gate "go", Formula.False)));
  Alcotest.(check (list int)) "<any> true" [ 0; 1; 2 ]
    (sat_list example (Formula.Diamond (Action.Any, Formula.True)))

let test_boolean_connectives () =
  let can_go = Formula.Diamond (Action.Gate "go", Formula.True) in
  let can_done = Formula.Diamond (Action.Gate "done", Formula.True) in
  Alcotest.(check (list int)) "or" [ 0; 2 ]
    (sat_list example (Formula.Or (can_go, can_done)));
  Alcotest.(check (list int)) "and" []
    (sat_list example (Formula.And (can_go, can_done)));
  Alcotest.(check (list int)) "not" [ 1; 2; 3 ]
    (sat_list example (Formula.Not can_go));
  Alcotest.(check (list int)) "implies" [ 1; 2; 3 ]
    (sat_list example (Formula.Implies (can_go, Formula.False)))

let test_fixpoints () =
  (* EF <done> true: all states that can reach a done-capable state *)
  let ef_done =
    Formula.Macro.possibly (Formula.Macro.can_do (Action.Gate "done"))
  in
  Alcotest.(check (list int)) "EF done" [ 0; 1; 2 ] (sat_list example ef_done);
  (* deadlock freedom fails here because of state 3 *)
  Alcotest.(check bool) "deadlock" false
    (Eval.holds example Formula.Macro.deadlock_free);
  let no_dead_end =
    build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "b", 0) ]
  in
  Alcotest.(check bool) "deadlock free" true
    (Eval.holds no_dead_end Formula.Macro.deadlock_free)

let test_inevitability () =
  (* on a -> b -> a cycle, b is inevitable from 0 *)
  let cycle = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "b", 0) ] in
  Alcotest.(check bool) "b inevitable" true
    (Eval.holds cycle (Formula.Macro.inevitably_action (Action.Gate "b")));
  (* add an escape loop avoiding b: no longer inevitable *)
  let escape =
    build ~nb_states:3 ~initial:0
      [ (0, "a", 1); (1, "b", 0); (0, "c", 2); (2, "c", 2) ]
  in
  Alcotest.(check bool) "not inevitable with escape" false
    (Eval.holds escape (Formula.Macro.inevitably_action (Action.Gate "b")))

let test_response_macro () =
  let cycle =
    build ~nb_states:3 ~initial:0 [ (0, "req", 1); (1, "i", 2); (2, "ack", 0) ]
  in
  Alcotest.(check bool) "req -> ack" true
    (Eval.holds cycle
       (Formula.Macro.response ~trigger:(Action.Gate "req")
          ~reaction:(Action.Gate "ack")));
  let broken =
    build ~nb_states:3 ~initial:0
      [ (0, "req", 1); (1, "i", 2); (2, "ack", 0); (1, "i", 1) ]
  in
  Alcotest.(check bool) "divergence breaks response" false
    (Eval.holds broken
       (Formula.Macro.response ~trigger:(Action.Gate "req")
          ~reaction:(Action.Gate "ack")))

let test_never_macro () =
  Alcotest.(check bool) "never error (no error action)" true
    (Eval.holds example (Formula.Macro.never (Action.Gate "error")));
  Alcotest.(check bool) "never go fails" false
    (Eval.holds example (Formula.Macro.never (Action.Gate "go")))

let test_check_rejects () =
  let open Formula in
  (* unbound variable *)
  (try
     check (Var "X");
     Alcotest.fail "expected Ill_formed"
   with Ill_formed _ -> ());
  (* negation of open formula *)
  (try
     check (Mu ("X", Not (Var "X")));
     Alcotest.fail "expected Ill_formed"
   with Ill_formed _ -> ());
  (* alternation: nu X . mu Y . ... X ... crossing signs *)
  try
    check (Nu ("X", Mu ("Y", Or (Var "X", Var "Y"))));
    Alcotest.fail "expected Ill_formed"
  with Ill_formed _ -> ()

let test_check_accepts_macros () =
  List.iter Formula.check
    [
      Formula.Macro.deadlock_free;
      Formula.Macro.always Formula.True;
      Formula.Macro.possibly Formula.False;
      Formula.Macro.inevitably Formula.True;
      Formula.Macro.never (Action.Gate "x");
      Formula.Macro.response ~trigger:Action.Any ~reaction:Action.Tau;
    ]

let test_parser () =
  let f = Parser.formula_of_string "nu X . <any> true and [any] X" in
  Alcotest.(check bool) "parsed deadlock_free equivalent" true
    (Eval.holds (build ~nb_states:1 ~initial:0 [ (0, "a", 0) ]) f);
  let g = Parser.formula_of_string "<\"work !1\"> true" in
  Alcotest.(check (list int)) "string label" [ 1 ] (sat_list example g);
  let h = Parser.formula_of_string "[go] false or <done> true" in
  Alcotest.(check (list int)) "mixed" [ 1; 2; 3 ] (sat_list example h);
  let k = Parser.formula_of_string "deadlock_free" in
  Alcotest.(check bool) "macro keyword" false (Eval.holds example k);
  let m = Parser.formula_of_string "mu X . (<done> true or <any> X)" in
  Alcotest.(check (list int)) "mu" [ 0; 1; 2 ] (sat_list example m)

let test_parser_actions () =
  let a = Parser.action_of_string "not (tau or done)" in
  let labels = Lts.labels example in
  Alcotest.(check bool) "not tau" false (Action.matches labels a Label.tau);
  Alcotest.(check bool) "matches go" true
    (Action.matches labels a (Option.get (Label.find labels "go")))

let test_parser_errors () =
  List.iter
    (fun text ->
       try
         ignore (Parser.formula_of_string text);
         Alcotest.fail ("expected parse error on " ^ text)
       with Parser.Parse_error _ -> ())
    [ "mu . X"; "<a true"; "true true"; "" ];
  try
    ignore (Parser.formula_of_string "mu X . not X");
    Alcotest.fail "expected Ill_formed"
  with Formula.Ill_formed _ -> ()

(* ---- regular modalities ---- *)

let test_regex_safety_idiom () =
  (* [true* . alpha] false == never alpha *)
  let with_error =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "error", 2); (2, "a", 2) ]
  in
  let without =
    build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "b", 0) ]
  in
  let safety = Parser.formula_of_string "[ true* . error ] false" in
  Alcotest.(check bool) "violation found" false (Eval.holds with_error safety);
  Alcotest.(check bool) "safe model passes" true (Eval.holds without safety);
  (* agreement with the macro on both models *)
  List.iter
    (fun lts ->
       Alcotest.(check bool) "matches Macro.never"
         (Eval.holds lts (Formula.Macro.never (Action.Gate "error")))
         (Eval.holds lts safety))
    [ with_error; without ]

let test_regex_sequence_and_union () =
  (* example LTS: 0 -go-> 1 -work !1-> 2 -done-> 0 and 2 -i-> 3 *)
  Alcotest.(check (list int)) "<go . work> true" [ 0 ]
    (sat_list example (Parser.formula_of_string "< go . work > true"));
  Alcotest.(check (list int)) "<go | done> true" [ 0; 2 ]
    (sat_list example (Parser.formula_of_string "< go | done > true"));
  (* sequence through a string atom *)
  Alcotest.(check (list int)) "string atom in regex" [ 1 ]
    (sat_list example (Parser.formula_of_string {|< "work !1" . done > true|}))

let test_regex_star () =
  (* <any*> phi is EF phi *)
  let ef =
    Parser.formula_of_string "< any* > (< done > true)"
  in
  Alcotest.(check (list int)) "EF via star" [ 0; 1; 2 ] (sat_list example ef);
  (* [a*] phi on a pure a-cycle requires phi everywhere on the cycle *)
  let cycle = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (1, "a", 0) ] in
  Alcotest.(check bool) "[a*]<a>true on cycle" true
    (Eval.holds cycle (Parser.formula_of_string "[ a* ] < a > true"));
  (* nested stars *)
  let nested = Parser.formula_of_string "< (go . (work | i)* . done)* > true" in
  Alcotest.(check bool) "nested stars evaluate" true (Eval.holds example nested)

let test_regex_combinators () =
  let open Formula.Regex in
  let r = Seq (Star (Act (Action.Gate "a")), Act (Action.Gate "b")) in
  let f = diamond r Formula.True in
  Formula.check f;
  let chain =
    build ~nb_states:3 ~initial:0 [ (0, "a", 1); (1, "a", 1); (1, "b", 2) ]
  in
  Alcotest.(check bool) "a*.b reachable" true (Eval.holds chain f);
  let g = box r Formula.False in
  Formula.check g;
  Alcotest.(check bool) "box version fails where path exists" false
    (Eval.holds chain g)

let test_witnesses () =
  let w =
    Eval.witnesses example ~limit:2
      (Formula.Diamond (Action.Any, Formula.True))
  in
  Alcotest.(check (list int)) "limited witnesses" [ 0; 1 ] w

let test_empty_modalities () =
  (* on a deadlocked state: box over anything is true, diamond false *)
  let dead = build ~nb_states:1 ~initial:0 [] in
  Alcotest.(check bool) "[any] false holds" true
    (Eval.holds dead (Formula.Box (Action.Any, Formula.False)));
  Alcotest.(check bool) "<any> true fails" false
    (Eval.holds dead (Formula.Diamond (Action.Any, Formula.True)))

let test_tau_modalities () =
  let lts = build ~nb_states:2 ~initial:0 [ (0, "i", 1) ] in
  Alcotest.(check bool) "<tau> true" true
    (Eval.holds lts (Formula.Diamond (Action.Tau, Formula.True)));
  Alcotest.(check bool) "<visible> true fails" false
    (Eval.holds lts (Formula.Diamond (Action.Visible, Formula.True)))

(* ---- BES engine cross-validation ---- *)

module Bes = Mv_mcl.Bes

let test_bes_basics () =
  (* same verdicts as the direct evaluator on the running example *)
  List.iter
    (fun text ->
       let f = Parser.formula_of_string text in
       Alcotest.(check (list int))
         ("bes sat: " ^ text)
         (sat_list example f)
         (Bitset.to_list (Bes.sat example f)))
    [
      "true"; "false"; "<go> true"; "[go] false"; "<any> true and [done] false";
      "not (<go> true)"; "<go> true => <any> true";
      "mu X . (<done> true or <any> X)";
      "nu X . <any> true and [any] X";
      "[ true* . \"work !1\" ] false";
      "< any* . done > true";
      "deadlock_free";
    ]

let test_bes_stats () =
  let bes = Bes.translate example (Parser.formula_of_string "mu X . <any> X") in
  let st = Bes.stats bes in
  Alcotest.(check bool) "variables scale with states" true
    (st.Bes.variables >= Lts.nb_states example);
  Alcotest.(check bool) "at least one block" true (st.Bes.blocks >= 1)

(* random alternation-free formulas from a schema pool *)
let formula_gen =
  let open QCheck2.Gen in
  let action = oneofl [ Action.Gate "a"; Action.Gate "b"; Action.Any; Action.Tau ] in
  let leaf =
    oneof
      [ return Formula.True; return Formula.False;
        map (fun a -> Formula.Macro.can_do a) action;
        return Formula.Macro.deadlock_free;
        map (fun a -> Formula.Macro.never a) action;
        map (fun a -> Formula.Macro.inevitably_action a) action ]
  in
  let rec build depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          map2 (fun a b -> Formula.And (a, b)) (build (depth - 1)) (build (depth - 1));
          map2 (fun a b -> Formula.Or (a, b)) (build (depth - 1)) (build (depth - 1));
          map2 (fun alpha f -> Formula.Diamond (alpha, f)) action (build (depth - 1));
          map2 (fun alpha f -> Formula.Box (alpha, f)) action (build (depth - 1));
          map (fun f -> Formula.Macro.possibly f) (build (depth - 1));
          map (fun f -> Formula.Macro.always f) (build (depth - 1));
          map (fun f -> Formula.Not f) leaf;
          map2
            (fun alpha f ->
               Formula.Regex.diamond
                 (Formula.Regex.Star (Formula.Regex.Act alpha))
                 f)
            action (build (depth - 1)) ]
  in
  build 3

let lts_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 1 10 in
    let* transitions =
      list_size (int_bound 25)
        (triple (int_bound (nb_states - 1))
           (oneofl [ "a"; "b"; "i" ])
           (int_bound (nb_states - 1)))
    in
    return (build ~nb_states ~initial:0 transitions))

let bes_matches_eval_prop =
  QCheck2.Test.make ~name:"BES solver agrees with direct evaluator" ~count:120
    (QCheck2.Gen.pair lts_gen formula_gen)
    (fun (lts, f) ->
       Bitset.equal (Bes.sat lts f) (Eval.sat lts f))

let suite =
  [
    Alcotest.test_case "action formulas" `Quick test_action_formulas;
    Alcotest.test_case "modalities" `Quick test_modalities;
    Alcotest.test_case "boolean connectives" `Quick test_boolean_connectives;
    Alcotest.test_case "fixpoints" `Quick test_fixpoints;
    Alcotest.test_case "inevitability" `Quick test_inevitability;
    Alcotest.test_case "response macro" `Quick test_response_macro;
    Alcotest.test_case "never macro" `Quick test_never_macro;
    Alcotest.test_case "check rejects ill-formed" `Quick test_check_rejects;
    Alcotest.test_case "check accepts macros" `Quick test_check_accepts_macros;
    Alcotest.test_case "formula parser" `Quick test_parser;
    Alcotest.test_case "action parser" `Quick test_parser_actions;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "witnesses" `Quick test_witnesses;
    Alcotest.test_case "regex: safety idiom" `Quick test_regex_safety_idiom;
    Alcotest.test_case "regex: sequence and union" `Quick
      test_regex_sequence_and_union;
    Alcotest.test_case "regex: star" `Quick test_regex_star;
    Alcotest.test_case "regex: combinators" `Quick test_regex_combinators;
    Alcotest.test_case "empty modalities" `Quick test_empty_modalities;
    Alcotest.test_case "tau modalities" `Quick test_tau_modalities;
    Alcotest.test_case "bes: verdicts match evaluator" `Quick test_bes_basics;
    Alcotest.test_case "bes: stats" `Quick test_bes_stats;
    QCheck_alcotest.to_alcotest bes_matches_eval_prop;
  ]
