(* Tests for mv_faust: the CHP router, its verification, chain
   composition, and the hop-latency model. *)

module Router = Mv_faust.Router
module Noc = Mv_faust.Noc
module Flow = Mv_core.Flow
module Net = Mv_compose.Net
module Lts = Mv_lts.Lts

let close ?(eps = 1e-8) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g, got %.8g" msg expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let test_router_properties () =
  let spec = Router.closed_spec ~id:"t" in
  let v = Flow.verify spec (Router.properties ~id:"t") in
  Alcotest.(check bool) "all properties hold" true (Flow.all_hold v);
  Alcotest.(check (list int)) "no deadlocks" [] v.Flow.deadlock_states

let test_single_packet_delivery () =
  List.iter
    (fun (input, dest) ->
       let spec = Router.single_packet_spec ~id:"t" ~input ~dest in
       let v = Flow.verify spec [ Router.delivery_property ~id:"t" ~dest ] in
       Alcotest.(check bool)
         (Printf.sprintf "in%d -> out%d inevitable" input dest)
         true (Flow.all_hold v))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_misrouting_would_be_caught () =
  (* sanity of the property itself: a "router" that swaps outputs
     violates the misroute property *)
  let broken =
    Mv_calc.Parser.spec_of_string_checked
      {|
process Bad := in0_t ?d:int[0..1] ; ([d == 0] -> out1_t !d ; Bad [] [d == 1] -> out0_t !d ; Bad)
process Src := in0_t !0 ; Src [] in0_t !1 ; Src
process Sink0 := out0_t ?x:int[0..1] ; Sink0
process Sink1 := out1_t ?x:int[0..1] ; Sink1
init (Src |[in0_t]| Bad) |[out0_t, out1_t]| (Sink0 ||| Sink1)
|}
  in
  let v =
    Flow.verify broken
      [ ( "no misroute to port 0",
          Mv_mcl.Formula.Macro.never (Mv_mcl.Action_formula.Name "out0_t !1") ) ]
  in
  Alcotest.(check bool) "caught" false (Flow.all_hold v)

let test_router_lts_shape () =
  let lts = Router.lts ~id:"t" in
  Alcotest.(check bool) "nonempty" true (Lts.nb_states lts > 1);
  (* internal request channels are hidden *)
  let visible_gates =
    List.sort_uniq compare
      (List.map Mv_lts.Label.gate (Lts.occurring_labels lts))
  in
  Alcotest.(check (list string)) "only external ports and tau"
    [ "i"; "in0_t"; "in1_t"; "out0_t"; "out1_t" ]
    visible_gates

let test_chain_strategies () =
  let node = Noc.chain ~length:3 in
  let mono = Net.evaluate ~strategy:`Monolithic node in
  let comp = Net.evaluate ~strategy:`Compositional node in
  Alcotest.(check bool) "results equivalent" true
    (Mv_bisim.Branching.equivalent mono.Net.result comp.Net.result);
  Alcotest.(check bool) "compositional peak not larger" true
    (comp.Net.peak_states <= mono.Net.peak_states)

let test_hop_latency_uncontended () =
  (* without contention the packet latency is exactly hops/hop_rate *)
  List.iter
    (fun hops ->
       close
         (Printf.sprintf "%d hops" hops)
         (float_of_int hops /. 10.0)
         (Noc.mean_packet_latency ~hops ~inject:1.0 ~hop_rate:10.0 ~cross:None))
    [ 1; 2; 4 ]

let test_hop_latency_contention () =
  let free = Noc.mean_packet_latency ~hops:2 ~inject:1.0 ~hop_rate:10.0 ~cross:None in
  let light =
    Noc.mean_packet_latency ~hops:2 ~inject:1.0 ~hop_rate:10.0 ~cross:(Some 2.0)
  in
  let heavy =
    Noc.mean_packet_latency ~hops:2 ~inject:1.0 ~hop_rate:10.0 ~cross:(Some 8.0)
  in
  Alcotest.(check bool) "contention increases latency" true (free < light);
  Alcotest.(check bool) "monotone in load" true (light < heavy)

let test_latency_independent_of_injection_when_free () =
  (* closed single-packet loop: the injection rate only adds think
     time, which mean_packet_latency subtracts *)
  let l1 = Noc.mean_packet_latency ~hops:2 ~inject:0.5 ~hop_rate:10.0 ~cross:None in
  let l2 = Noc.mean_packet_latency ~hops:2 ~inject:4.0 ~hop_rate:10.0 ~cross:None in
  close "independent of think time" l1 l2

(* ---- 2x2 mesh ---- *)

let all_crossing_flows =
  Mv_faust.Mesh.[
    { node = (0, 0); dest = (1, 1) }; { node = (1, 0); dest = (0, 1) };
    { node = (0, 1); dest = (1, 0) }; { node = (1, 1); dest = (0, 0) } ]

let test_mesh_shared_buffer_deadlocks () =
  let flows = Mv_faust.Mesh.crossing_flows in
  match Mv_faust.Mesh.deadlock_witness Mv_faust.Mesh.Shared_buffer ~flows with
  | None -> Alcotest.fail "expected the head-of-line deadlock"
  | Some t ->
    (* the minimal witness: the two crossing injections *)
    Alcotest.(check int) "two-step witness" 2 (List.length t.Mv_lts.Trace.labels)

let test_mesh_port_buffered_verifies () =
  List.iter
    (fun flows ->
       let spec = Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered ~flows in
       let v = Flow.verify spec (Mv_faust.Mesh.properties ~flows) in
       Alcotest.(check bool) "all mesh properties hold" true (Flow.all_hold v))
    [ Mv_faust.Mesh.crossing_flows; all_crossing_flows ]

let test_mesh_shared_ok_without_crossing () =
  (* a single flow cannot create the cycle: even the shared-buffer
     design is deadlock-free *)
  let flows = [ Mv_faust.Mesh.{ node = (0, 0); dest = (1, 1) } ] in
  Alcotest.(check bool) "single flow safe" true
    (Mv_faust.Mesh.deadlock_witness Mv_faust.Mesh.Shared_buffer ~flows = None)

let test_mesh_xy_routes_correctly () =
  (* packets reach exactly their destination, for every flow pattern *)
  let spec = Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered ~flows:all_crossing_flows in
  let lts = Mv_calc.State_space.lts spec in
  (* delivered labels are exactly the four expected ones *)
  let deliveries =
    List.filter (fun l -> String.length l > 0 && l.[0] = 'l' &&
                          String.length l > 3 && l.[3] = 'o')
      (Lts.occurring_labels lts)
  in
  Alcotest.(check (list string)) "exact deliveries"
    [ "l00o !0"; "l01o !2"; "l10o !1"; "l11o !3" ]
    (List.sort compare deliveries)

let suite =
  [
    Alcotest.test_case "router properties" `Quick test_router_properties;
    Alcotest.test_case "single packet delivery" `Quick
      test_single_packet_delivery;
    Alcotest.test_case "misrouting caught" `Quick test_misrouting_would_be_caught;
    Alcotest.test_case "router LTS shape" `Quick test_router_lts_shape;
    Alcotest.test_case "chain strategies agree" `Slow test_chain_strategies;
    Alcotest.test_case "hop latency uncontended" `Quick
      test_hop_latency_uncontended;
    Alcotest.test_case "hop latency under contention" `Quick
      test_hop_latency_contention;
    Alcotest.test_case "latency independent of think time" `Quick
      test_latency_independent_of_injection_when_free;
    Alcotest.test_case "mesh: shared buffer deadlocks" `Quick
      test_mesh_shared_buffer_deadlocks;
    Alcotest.test_case "mesh: port buffered verifies" `Quick
      test_mesh_port_buffered_verifies;
    Alcotest.test_case "mesh: single flow safe" `Quick
      test_mesh_shared_ok_without_crossing;
    Alcotest.test_case "mesh: XY delivers exactly" `Quick
      test_mesh_xy_routes_correctly;
  ]
