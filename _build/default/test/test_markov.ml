(* Tests for mv_markov: sparse matrices, Poisson weights, DTMC and
   CTMC solvers, validated against closed-form birth-death results. *)

module Sparse = Mv_markov.Sparse
module Poisson = Mv_markov.Poisson
module Dtmc = Mv_markov.Dtmc
module Ctmc = Mv_markov.Ctmc

let close ?(eps = 1e-8) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.10g, got %.10g" msg expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let test_sparse_basics () =
  let m =
    Sparse.of_triples ~rows:3 ~cols:3
      [ (0, 1, 2.0); (0, 1, 3.0); (1, 2, 1.0); (2, 0, 4.0) ]
  in
  Alcotest.(check int) "entries merged" 3 (Sparse.nb_entries m);
  close "get merged" 5.0 (Sparse.get m 0 1);
  close "get absent" 0.0 (Sparse.get m 1 1);
  let sums = Sparse.row_sums m in
  close "row sum" 5.0 sums.(0);
  let y = Sparse.mul_left m [| 1.0; 1.0; 1.0 |] in
  close "mul_left col0" 4.0 y.(0);
  close "mul_left col1" 5.0 y.(1);
  let z = Sparse.mul_right m [| 1.0; 1.0; 1.0 |] in
  close "mul_right row0" 5.0 z.(0);
  let t = Sparse.transpose m in
  close "transpose" 5.0 (Sparse.get t 1 0);
  let s = Sparse.scale m 2.0 in
  close "scale" 10.0 (Sparse.get s 0 1)

let test_sparse_validation () =
  Alcotest.check_raises "range"
    (Invalid_argument "Sparse.of_triples: index out of range") (fun () ->
      ignore (Sparse.of_triples ~rows:1 ~cols:1 [ (0, 3, 1.0) ]))

let test_poisson_point_mass () =
  let w = Poisson.weights ~q:0.0 ~epsilon:1e-10 in
  Alcotest.(check int) "left" 0 w.Poisson.left;
  close "point mass" 1.0 w.Poisson.weights.(0)

let test_poisson_sums_to_one () =
  List.iter
    (fun q ->
       let w = Poisson.weights ~q ~epsilon:1e-10 in
       let total = Array.fold_left ( +. ) 0.0 w.Poisson.weights in
       close (Printf.sprintf "q=%g sums" q) 1.0 total;
       (* compare a few entries with the direct formula for small q *)
       if q <= 30.0 then begin
         let direct k =
           let rec logfact n acc =
             if n <= 1 then acc else logfact (n - 1) (acc +. log (float_of_int n))
           in
           exp ((float_of_int k *. log q) -. q -. logfact k 0.0)
         in
         for k = w.Poisson.left to min w.Poisson.right (w.Poisson.left + 5) do
           close ~eps:1e-9
             (Printf.sprintf "q=%g k=%d" q k)
             (direct k)
             w.Poisson.weights.(k - w.Poisson.left)
         done
       end)
    [ 0.5; 4.0; 25.0; 400.0; 10_000.0 ]

let test_dtmc_two_state () =
  (* p(0->1)=0.3, p(1->0)=0.6: steady = (2/3, 1/3) *)
  let chain =
    Dtmc.make ~nb_states:2 ~initial:0
      [ (0, 0, 0.7); (0, 1, 0.3); (1, 0, 0.6); (1, 1, 0.4) ]
  in
  let pi = Dtmc.steady_state chain in
  close "pi0" (2.0 /. 3.0) pi.(0);
  close "pi1" (1.0 /. 3.0) pi.(1);
  let d1 = Dtmc.distribution_after chain 1 in
  close "one step" 0.3 d1.(1)

let test_dtmc_validation () =
  (try
     ignore (Dtmc.make ~nb_states:1 ~initial:0 [ (0, 0, 0.5) ]);
     Alcotest.fail "expected row-sum failure"
   with Invalid_argument _ -> ());
  (* zero rows become absorbing *)
  let chain = Dtmc.make ~nb_states:2 ~initial:0 [ (0, 1, 1.0) ] in
  let d = Dtmc.distribution_after chain 5 in
  close "absorbed" 1.0 d.(1)

(* Birth-death CTMC = M/M/1/K; closed form is in Mv_xstream.Analytic. *)
let birth_death ~arrival ~service ~k =
  let transitions = ref [] in
  for m = 0 to k - 1 do
    transitions :=
      { Ctmc.src = m; rate = arrival; actions = [ "arrive" ]; dst = m + 1 }
      :: !transitions
  done;
  for m = 1 to k do
    transitions :=
      { Ctmc.src = m; rate = service; actions = [ "serve" ]; dst = m - 1 }
      :: !transitions
  done;
  Ctmc.make ~nb_states:(k + 1) ~initial:0 !transitions

let test_ctmc_steady_birth_death () =
  let arrival = 2.0 and service = 3.0 and k = 5 in
  let chain = birth_death ~arrival ~service ~k in
  let pi = Ctmc.steady_state chain in
  let expected = Mv_xstream.Analytic.pi ~arrival ~service ~k in
  Array.iteri (fun m p -> close ~eps:1e-9 (Printf.sprintf "pi %d" m) expected.(m) p) pi;
  close ~eps:1e-9 "throughput(serve)"
    (Mv_xstream.Analytic.throughput ~arrival ~service ~k)
    (Ctmc.throughput chain ~pi ~action:"serve");
  close ~eps:1e-9 "mean jobs"
    (Mv_xstream.Analytic.mean_jobs ~arrival ~service ~k)
    (Ctmc.expected_reward chain ~pi (fun s -> float_of_int s))

let test_ctmc_self_loop_throughput () =
  (* a self-loop does not change the distribution but counts in the
     throughput of its action *)
  let chain =
    Ctmc.make ~nb_states:2 ~initial:0
      [
        { Ctmc.src = 0; rate = 1.0; actions = []; dst = 1 };
        { Ctmc.src = 1; rate = 1.0; actions = []; dst = 0 };
        { Ctmc.src = 0; rate = 5.0; actions = [ "tick" ]; dst = 0 };
      ]
  in
  let pi = Ctmc.steady_state chain in
  close "balanced" 0.5 pi.(0);
  close "self-loop throughput" 2.5 (Ctmc.throughput chain ~pi ~action:"tick")

let test_ctmc_bsccs_and_reducible_steady () =
  (* 0 -> 1 (absorbing) at rate 1, 0 -> 2 (absorbing) at rate 3:
     absorption probabilities 1/4 and 3/4 *)
  let chain =
    Ctmc.make ~nb_states:3 ~initial:0
      [
        { Ctmc.src = 0; rate = 1.0; actions = []; dst = 1 };
        { Ctmc.src = 0; rate = 3.0; actions = []; dst = 2 };
      ]
  in
  let bsccs = List.sort compare (Ctmc.bsccs chain) in
  Alcotest.(check (list (list int))) "bsccs" [ [ 1 ]; [ 2 ] ] bsccs;
  Alcotest.(check (list int)) "absorbing" [ 1; 2 ] (Ctmc.absorbing_states chain);
  let pi = Ctmc.steady_state chain in
  close ~eps:1e-9 "absorb 1" 0.25 pi.(1);
  close ~eps:1e-9 "absorb 2" 0.75 pi.(2);
  close ~eps:1e-9 "transient mass" 0.0 pi.(0)

let test_ctmc_transient () =
  (* two-state: P(still in 0 at t) = exp(-lambda t) *)
  let lambda = 2.0 in
  let chain =
    Ctmc.make ~nb_states:2 ~initial:0
      [ { Ctmc.src = 0; rate = lambda; actions = []; dst = 1 } ]
  in
  List.iter
    (fun t ->
       let d = Ctmc.transient chain ~horizon:t in
       close ~eps:1e-8
         (Printf.sprintf "exp decay t=%g" t)
         (exp (-.lambda *. t))
         d.(0);
       close ~eps:1e-8 "mass" 1.0 (d.(0) +. d.(1)))
    [ 0.0; 0.1; 1.0; 5.0 ];
  (* uniformization on a chain with a large rate spread *)
  let chain2 =
    Ctmc.make ~nb_states:3 ~initial:0
      [
        { Ctmc.src = 0; rate = 100.0; actions = []; dst = 1 };
        { Ctmc.src = 1; rate = 0.1; actions = []; dst = 2 };
      ]
  in
  let d = Ctmc.transient chain2 ~horizon:50.0 in
  close ~eps:1e-6 "two-phase absorption"
    (1.0
     -. ((100.0 /. (100.0 -. 0.1)) *. exp (-0.1 *. 50.0))
     -. ((0.1 /. (0.1 -. 100.0)) *. exp (-100.0 *. 50.0)))
    d.(2)

let test_ctmc_mean_first_passage () =
  (* Erlang-3 chain: mean passage = 3 / rate *)
  let rate = 2.0 in
  let chain =
    Ctmc.make ~nb_states:4 ~initial:0
      (List.init 3 (fun i -> { Ctmc.src = i; rate; actions = []; dst = i + 1 }))
  in
  let h = Ctmc.mean_first_passage chain ~targets:[ 3 ] in
  close ~eps:1e-9 "erlang mean" 1.5 h.(0);
  close "target zero" 0.0 h.(3);
  (* unreachable target *)
  let h2 = Ctmc.mean_first_passage chain ~targets:[ 0 ] in
  close "already there" 0.0 h2.(0);
  Alcotest.(check bool) "unreachable is infinite" true (h2.(3) = infinity)

let test_ctmc_mean_first_passage_with_cycle () =
  (* M/M/1/2 from empty to full: E[T] for birth-death; closed form
     by first-step analysis: h0 = 1/l + h1; h1 = 1/(l+m) + m/(l+m) h0 *)
  let l = 1.0 and m = 2.0 in
  let chain = birth_death ~arrival:l ~service:m ~k:2 in
  let h = Ctmc.mean_first_passage chain ~targets:[ 2 ] in
  (* solve: h1 = 1/(l+m) + (m/(l+m)) h0, h0 = 1/l + h1 *)
  let h0 =
    ((1.0 /. (l +. m)) +. (1.0 /. l)) /. (1.0 -. (m /. (l +. m)))
  in
  close ~eps:1e-8 "h0" h0 h.(0)

let test_ctmc_accumulated_reward () =
  (* Erlang-2 chain at rate 2, reward 3 in state 0 and 5 in state 1:
     expected accumulation = 3/2 + 5/2 *)
  let chain =
    Ctmc.make ~nb_states:3 ~initial:0
      [
        { Ctmc.src = 0; rate = 2.0; actions = []; dst = 1 };
        { Ctmc.src = 1; rate = 2.0; actions = []; dst = 2 };
      ]
  in
  let reward = function 0 -> 3.0 | 1 -> 5.0 | _ -> 100.0 in
  let g = Ctmc.accumulated_reward chain ~reward ~targets:[ 2 ] in
  close ~eps:1e-9 "accumulated" 4.0 g.(0);
  close "target" 0.0 g.(2);
  (* consistency: unit reward equals mean first passage *)
  let h = Ctmc.mean_first_passage chain ~targets:[ 2 ] in
  let u = Ctmc.accumulated_reward chain ~reward:(fun _ -> 1.0) ~targets:[ 2 ] in
  close ~eps:1e-12 "unit reward = passage time" h.(0) u.(0)

let test_ctmc_reach_probability () =
  let rate = 2.0 in
  let chain =
    Ctmc.make ~nb_states:2 ~initial:0
      [ { Ctmc.src = 0; rate; actions = []; dst = 1 } ]
  in
  close ~eps:1e-8 "cdf" (1.0 -. exp (-.rate *. 0.7))
    (Ctmc.reach_probability_by chain ~targets:[ 1 ] ~horizon:0.7)

let test_ctmc_embedded () =
  let chain = birth_death ~arrival:1.0 ~service:3.0 ~k:2 in
  let e = Ctmc.embedded chain in
  let m = Dtmc.matrix e in
  close "jump up from 1" 0.25 (Sparse.get m 1 2);
  close "jump down from 1" 0.75 (Sparse.get m 1 0)

let test_ctmc_validation () =
  Alcotest.check_raises "rate" (Invalid_argument "Ctmc.make: rate must be positive")
    (fun () ->
       ignore
         (Ctmc.make ~nb_states:1 ~initial:0
            [ { Ctmc.src = 0; rate = 0.0; actions = []; dst = 0 } ]))

let test_sparse_shapes () =
  let m = Sparse.of_triples ~rows:2 ~cols:3 [ (0, 2, 1.0) ] in
  Alcotest.(check int) "rows" 2 (Sparse.rows m);
  Alcotest.(check int) "cols" 3 (Sparse.cols m);
  Alcotest.check_raises "mul_left shape" (Invalid_argument "Sparse.mul_left")
    (fun () -> ignore (Sparse.mul_left m [| 1.0; 2.0; 3.0 |]));
  Alcotest.check_raises "mul_right shape" (Invalid_argument "Sparse.mul_right")
    (fun () -> ignore (Sparse.mul_right m [| 1.0 |]))

let test_transient_edge_cases () =
  let chain =
    Ctmc.make ~nb_states:2 ~initial:0
      [ { Ctmc.src = 0; rate = 1.0; actions = []; dst = 1 } ]
  in
  (* t = 0 is the point mass *)
  let d0 = Ctmc.transient chain ~horizon:0.0 in
  close "point mass" 1.0 d0.(0);
  Alcotest.check_raises "negative horizon"
    (Invalid_argument "Ctmc.transient: negative horizon") (fun () ->
      ignore (Ctmc.transient chain ~horizon:(-1.0)));
  (* a chain with no transitions stays where it is *)
  let frozen = Ctmc.make ~nb_states:2 ~initial:1 [] in
  let d = Ctmc.transient frozen ~horizon:5.0 in
  close "frozen" 1.0 d.(1)

let test_throughputs_listing () =
  let chain =
    Ctmc.make ~nb_states:2 ~initial:0
      [
        { Ctmc.src = 0; rate = 2.0; actions = [ "up"; "both" ]; dst = 1 };
        { Ctmc.src = 1; rate = 2.0; actions = [ "down"; "both" ]; dst = 0 };
      ]
  in
  let pi = Ctmc.steady_state chain in
  let listed = Ctmc.throughputs chain ~pi in
  Alcotest.(check int) "three actions" 3 (List.length listed);
  close "both counts twice" 2.0 (List.assoc "both" listed);
  close "up" 1.0 (List.assoc "up" listed)

let test_linalg_solve () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Mv_markov.Linalg.solve a [| 5.0; 10.0 |] in
  close ~eps:1e-12 "x0" 1.0 x.(0);
  close ~eps:1e-12 "x1" 3.0 x.(1);
  (* input not modified *)
  close "a intact" 2.0 a.(0).(0);
  Alcotest.check_raises "singular" Mv_markov.Linalg.Singular (fun () ->
      ignore (Mv_markov.Linalg.solve [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] [| 1.0; 1.0 |]))

let test_linalg_steady_exact () =
  let chain = birth_death ~arrival:2.0 ~service:3.0 ~k:4 in
  let exact = Mv_markov.Linalg.steady_state_exact chain in
  let analytic = Mv_xstream.Analytic.pi ~arrival:2.0 ~service:3.0 ~k:4 in
  Array.iteri
    (fun m p -> close ~eps:1e-12 (Printf.sprintf "exact pi %d" m) analytic.(m) p)
    exact;
  (* reducible chains are rejected *)
  let reducible =
    Ctmc.make ~nb_states:2 ~initial:0
      [ { Ctmc.src = 0; rate = 1.0; actions = []; dst = 1 } ]
  in
  try
    ignore (Mv_markov.Linalg.steady_state_exact reducible);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* Property: Gauss-Seidel agrees with the exact LU oracle on random
   irreducible chains. *)
let gs_vs_lu_prop =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 12 in
      (* a random cycle guarantees irreducibility; extra random edges
         on top *)
      let* cycle_rates = list_repeat n (float_range 0.1 5.0) in
      let* extra =
        list_size (int_bound 20)
          (triple (int_bound (n - 1)) (int_bound (n - 1)) (float_range 0.1 5.0))
      in
      return (n, cycle_rates, extra))
  in
  QCheck2.Test.make ~name:"gauss-seidel steady state = LU oracle" ~count:40 gen
    (fun (n, cycle_rates, extra) ->
       let transitions =
         List.mapi
           (fun i r -> { Ctmc.src = i; rate = r; actions = []; dst = (i + 1) mod n })
           cycle_rates
         @ List.filter_map
             (fun (s, d, r) ->
                if s = d then None
                else Some { Ctmc.src = s; rate = r; actions = []; dst = d })
             extra
       in
       let chain = Ctmc.make ~nb_states:n ~initial:0 transitions in
       let gs = Ctmc.steady_state chain in
       let lu = Mv_markov.Linalg.steady_state_exact chain in
       Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-7) gs lu)

(* Property: steady state of random irreducible birth-death chains is a
   distribution satisfying detailed balance. *)
let steady_prop =
  let gen =
    QCheck2.Gen.(
      triple (float_range 0.1 5.0) (float_range 0.1 5.0) (int_range 1 8))
  in
  QCheck2.Test.make ~name:"ctmc steady state is balanced distribution" ~count:50
    gen
    (fun (arrival, service, k) ->
       let chain = birth_death ~arrival ~service ~k in
       let pi = Ctmc.steady_state chain in
       let total = Array.fold_left ( +. ) 0.0 pi in
       let balanced = ref true in
       for m = 0 to k - 1 do
         if abs_float ((pi.(m) *. arrival) -. (pi.(m + 1) *. service)) > 1e-8
         then balanced := false
       done;
       abs_float (total -. 1.0) < 1e-9 && !balanced)

let suite =
  [
    Alcotest.test_case "sparse basics" `Quick test_sparse_basics;
    Alcotest.test_case "sparse validation" `Quick test_sparse_validation;
    Alcotest.test_case "poisson point mass" `Quick test_poisson_point_mass;
    Alcotest.test_case "poisson weights" `Quick test_poisson_sums_to_one;
    Alcotest.test_case "dtmc two-state steady" `Quick test_dtmc_two_state;
    Alcotest.test_case "dtmc validation/absorbing" `Quick test_dtmc_validation;
    Alcotest.test_case "ctmc steady vs closed form" `Quick
      test_ctmc_steady_birth_death;
    Alcotest.test_case "ctmc self-loop throughput" `Quick
      test_ctmc_self_loop_throughput;
    Alcotest.test_case "ctmc bsccs + reducible steady" `Quick
      test_ctmc_bsccs_and_reducible_steady;
    Alcotest.test_case "ctmc transient" `Quick test_ctmc_transient;
    Alcotest.test_case "ctmc mean first passage" `Quick
      test_ctmc_mean_first_passage;
    Alcotest.test_case "ctmc first passage with cycles" `Quick
      test_ctmc_mean_first_passage_with_cycle;
    Alcotest.test_case "ctmc accumulated reward" `Quick
      test_ctmc_accumulated_reward;
    Alcotest.test_case "ctmc reach probability" `Quick test_ctmc_reach_probability;
    Alcotest.test_case "ctmc embedded chain" `Quick test_ctmc_embedded;
    Alcotest.test_case "ctmc validation" `Quick test_ctmc_validation;
    QCheck_alcotest.to_alcotest steady_prop;
    Alcotest.test_case "sparse shapes" `Quick test_sparse_shapes;
    Alcotest.test_case "transient edge cases" `Quick test_transient_edge_cases;
    Alcotest.test_case "throughput listing" `Quick test_throughputs_listing;
    Alcotest.test_case "linalg dense solve" `Quick test_linalg_solve;
    Alcotest.test_case "linalg exact steady state" `Quick
      test_linalg_steady_exact;
    QCheck_alcotest.to_alcotest gs_vs_lu_prop;
  ]
