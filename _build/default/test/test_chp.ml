(* Tests for mv_chp: channel analysis and translation to MVL. *)

module Chp = Mv_chp.Chp
module Ast = Mv_calc.Ast
module Ty = Mv_calc.Ty
module State_space = Mv_calc.State_space
module Lts = Mv_lts.Lts

let int01 = Ty.TIntRange (0, 1)

let test_channels () =
  let p =
    Chp.Seq
      ( Chp.Send ("c", Ast.vint 1),
        Chp.Par (Chp.Receive ("d", "x", int01), Chp.Send ("c", Ast.vint 0)) )
  in
  Alcotest.(check (list string)) "channels" [ "c"; "d" ] (Chp.channels p)

let lts_of p = State_space.lts (Chp.spec ~prefix:"t" p)

let test_skip_send_seq () =
  let p = Chp.Seq (Chp.Send ("c", Ast.vint 1), Chp.Send ("d", Ast.vint 0)) in
  let lts = lts_of p in
  Alcotest.(check (list string)) "labels" [ "c !1"; "d !0"; "exit" ]
    (Lts.occurring_labels lts);
  (* skip is the unit of sequence *)
  let q = Chp.Seq (Chp.Skip, p) in
  Alcotest.(check bool) "skip unit" true
    (Mv_bisim.Strong.equivalent lts (lts_of q))

let test_receive_binds () =
  (* C?x ; D!x : the received value flows to the send *)
  let p =
    Chp.Seq (Chp.Receive ("c", "x", int01), Chp.Send ("d", Mv_calc.Expr.Var "x"))
  in
  let lts = lts_of p in
  Alcotest.(check (list string)) "value flows"
    [ "c !0"; "c !1"; "d !0"; "d !1"; "exit" ]
    (Lts.occurring_labels lts)

let test_par_syncs_shared_channels () =
  (* sender and receiver share channel c: they communicate *)
  let p =
    Chp.Par
      ( Chp.Send ("c", Ast.vint 1),
        Chp.Seq (Chp.Receive ("c", "x", int01), Chp.Send ("out", Mv_calc.Expr.Var "x"))
      )
  in
  let lts = lts_of p in
  Alcotest.(check (list string)) "rendezvous" [ "c !1"; "exit"; "out !1" ]
    (Lts.occurring_labels lts)

let test_par_interleaves_disjoint () =
  let p = Chp.Par (Chp.Send ("a", Ast.vint 0), Chp.Send ("b", Ast.vint 0)) in
  let lts = lts_of p in
  (* 2x2 grid plus the joint exit *)
  Alcotest.(check int) "interleaving states" 5 (Lts.nb_states lts)

let test_select_guards () =
  let p =
    Chp.Select
      [
        (Ast.vbool true, Chp.Send ("yes", Ast.vint 0));
        (Ast.vbool false, Chp.Send ("no", Ast.vint 0));
      ]
  in
  Alcotest.(check (list string)) "only true branch" [ "exit"; "yes !0" ]
    (Lts.occurring_labels (lts_of p))

let test_loop () =
  let p = Chp.Loop (Chp.Send ("tick", Ast.vint 0)) in
  let lts = lts_of p in
  Alcotest.(check (list string)) "loops forever" [ "tick !0" ]
    (Lts.occurring_labels lts);
  Alcotest.(check (list int)) "no deadlock" [] (Lts.deadlocks lts)

let test_loop_capture_rejected () =
  (* *[D!x] with x bound outside the loop has no closed translation *)
  let p =
    Chp.Seq
      ( Chp.Receive ("c", "x", int01),
        Chp.Loop (Chp.Send ("d", Mv_calc.Expr.Var "x")) )
  in
  try
    ignore (Chp.translate ~prefix:"t" p);
    Alcotest.fail "expected Translation_error"
  with Mv_chp.Chp.Translation_error _ -> ()

let test_communication_choice () =
  (* arbiter shape: selection whose branches start with receives *)
  let p =
    Chp.Loop
      (Chp.Select
         [
           (Ast.vbool true,
            Chp.Seq (Chp.Receive ("a", "x", int01), Chp.Send ("o", Mv_calc.Expr.Var "x")));
           (Ast.vbool true,
            Chp.Seq (Chp.Receive ("b", "y", int01), Chp.Send ("o", Mv_calc.Expr.Var "y")));
         ])
  in
  let lts = lts_of p in
  Alcotest.(check (list string)) "serves both"
    [ "a !0"; "a !1"; "b !0"; "b !1"; "o !0"; "o !1" ]
    (Lts.occurring_labels lts)

(* ---- concrete CHP syntax ---- *)

let test_parser_basic () =
  let p = Mv_chp.Parser.process_of_string "c!1 ; d?x:int[0..1] ; e!x" in
  let lts = lts_of p in
  Alcotest.(check (list string)) "labels"
    [ "c !1"; "d !0"; "d !1"; "e !0"; "e !1"; "exit" ]
    (Lts.occurring_labels lts)

let test_parser_repeater () =
  let spec =
    Mv_chp.Parser.spec_of_string ~prefix:"rep" "*[ a?x:int[0..1] ; b!x ]"
  in
  let lts = Mv_calc.State_space.lts spec in
  Alcotest.(check (list int)) "loops" [] (Lts.deadlocks lts);
  Alcotest.(check (list string)) "labels" [ "a !0"; "a !1"; "b !0"; "b !1" ]
    (Lts.occurring_labels lts)

let test_parser_selection_and_par () =
  let text = "*[ [ true -> a?x:int[0..0] ; o!x | true -> b?y:int[0..0] ; o!y ] ] || *[ a!0 ]" in
  let spec = Mv_chp.Parser.spec_of_string ~prefix:"arb" text in
  let lts = Mv_calc.State_space.lts spec in
  (* channel a is shared, so it synchronizes; b stays open *)
  Alcotest.(check bool) "a served" true
    (List.mem "a !0" (Lts.occurring_labels lts));
  Alcotest.(check bool) "o produced" true
    (List.mem "o !0" (Lts.occurring_labels lts))

let test_parser_agrees_with_ast () =
  let parsed = Mv_chp.Parser.process_of_string "c!1 ; skip ; d!2" in
  let direct =
    Chp.Seq (Chp.Send ("c", Ast.vint 1), Chp.Seq (Chp.Skip, Chp.Send ("d", Ast.vint 2)))
  in
  Alcotest.(check bool) "equivalent translations" true
    (Mv_bisim.Strong.equivalent (lts_of parsed) (lts_of direct))

let test_parser_errors () =
  List.iter
    (fun text ->
       try
         ignore (Mv_chp.Parser.process_of_string text);
         Alcotest.fail ("expected parse error on: " ^ text)
       with Mv_chp.Parser.Parse_error _ -> ())
    [ "c!"; "c?x"; "*[ skip"; "[ true -> skip"; "skip skip"; "" ]

let suite =
  [
    Alcotest.test_case "channels" `Quick test_channels;
    Alcotest.test_case "skip/send/seq" `Quick test_skip_send_seq;
    Alcotest.test_case "receive binds across seq" `Quick test_receive_binds;
    Alcotest.test_case "par syncs shared channels" `Quick
      test_par_syncs_shared_channels;
    Alcotest.test_case "par interleaves disjoint" `Quick
      test_par_interleaves_disjoint;
    Alcotest.test_case "select guards" `Quick test_select_guards;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "loop capture rejected" `Quick test_loop_capture_rejected;
    Alcotest.test_case "communication choice" `Quick test_communication_choice;
    Alcotest.test_case "parser: basics" `Quick test_parser_basic;
    Alcotest.test_case "parser: repeater" `Quick test_parser_repeater;
    Alcotest.test_case "parser: selection + par" `Quick
      test_parser_selection_and_par;
    Alcotest.test_case "parser: agrees with AST" `Quick
      test_parser_agrees_with_ast;
    Alcotest.test_case "parser: errors" `Quick test_parser_errors;
  ]
