(* Tests for mv_calc: values, expressions, parser, typechecker,
   SOS semantics, and state-space generation. *)

module Ast = Mv_calc.Ast
module Expr = Mv_calc.Expr
module Value = Mv_calc.Value
module Ty = Mv_calc.Ty
module Parser = Mv_calc.Parser
module Typecheck = Mv_calc.Typecheck
module Semantics = Mv_calc.Semantics
module State_space = Mv_calc.State_space
module Lts = Mv_lts.Lts

let parse = Parser.spec_of_string_checked

let nb_states text = Lts.nb_states (State_space.lts (parse text))

let test_value_printing () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.VInt 42));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.VBool true));
  Alcotest.(check string) "enum" "RED" (Value.to_string (Value.VEnum "RED"))

let test_ty_domain () =
  let enums = [ ("color", [ "RED"; "GREEN" ]) ] in
  Alcotest.(check int) "bool domain" 2 (List.length (Ty.domain enums Ty.TBool));
  Alcotest.(check int) "range domain" 5
    (List.length (Ty.domain enums (Ty.TIntRange (-2, 2))));
  Alcotest.(check int) "enum domain" 2
    (List.length (Ty.domain enums (Ty.TEnum "color")));
  Alcotest.check_raises "empty range" (Invalid_argument "Ty.domain: empty range")
    (fun () -> ignore (Ty.domain enums (Ty.TIntRange (3, 1))));
  Alcotest.(check bool) "check_value" true
    (Ty.check_value enums (Ty.TIntRange (0, 3)) (Value.VInt 2));
  Alcotest.(check bool) "check_value out" false
    (Ty.check_value enums (Ty.TIntRange (0, 3)) (Value.VInt 4))

let eval_str text = Expr.eval (Parser.expr_of_string text)

let test_expr_eval () =
  Alcotest.(check bool) "arith" true
    (Value.equal (eval_str "2 + 3 * 4") (Value.VInt 14));
  Alcotest.(check bool) "parens" true
    (Value.equal (eval_str "(2 + 3) * 4") (Value.VInt 20));
  Alcotest.(check bool) "unary minus" true
    (Value.equal (eval_str "-3 + 5") (Value.VInt 2));
  Alcotest.(check bool) "mod" true
    (Value.equal (eval_str "7 % 3") (Value.VInt 1));
  Alcotest.(check bool) "comparison" true
    (Value.equal (eval_str "2 + 2 <= 4") (Value.VBool true));
  Alcotest.(check bool) "boolean" true
    (Value.equal (eval_str "true and not false") (Value.VBool true));
  Alcotest.(check bool) "precedence or/and" true
    (Value.equal (eval_str "true or false and false") (Value.VBool true));
  Alcotest.(check bool) "if" true
    (Value.equal (eval_str "if 1 < 2 then 10 else 20") (Value.VInt 10))

let test_expr_errors () =
  (try
     ignore (eval_str "1 / 0");
     Alcotest.fail "expected Eval_error"
   with Expr.Eval_error _ -> ());
  (try
     ignore (eval_str "x + 1");
     Alcotest.fail "expected Eval_error (unbound)"
   with Expr.Eval_error _ -> ());
  try
    ignore (eval_str "1 + true");
    Alcotest.fail "expected Eval_error (type)"
  with Expr.Eval_error _ -> ()

let test_expr_subst () =
  let e = Parser.expr_of_string "x + y * x" in
  Alcotest.(check (list string)) "free vars" [ "x"; "y" ] (Expr.free_vars e);
  let closed = Expr.subst [ ("x", Value.VInt 2); ("y", Value.VInt 5) ] e in
  Alcotest.(check bool) "substituted" true
    (Value.equal (Expr.eval closed) (Value.VInt 12))

let test_spec_parse_basics () =
  let spec =
    parse
      {|
type color = { RED, GREEN }
process Blink (c : color) :=
    show !c ; ([c == RED] -> Blink(GREEN) [] [c == GREEN] -> Blink(RED))
init Blink(RED)
|}
  in
  Alcotest.(check int) "1 process" 1 (List.length spec.Ast.processes);
  let lts = State_space.lts spec in
  (* the raw graph keeps the initial call term distinct from the
     post-show choice terms *)
  Alcotest.(check int) "3 raw states" 3 (Lts.nb_states lts);
  Alcotest.(check int) "2 states after minimization" 2
    (Lts.nb_states (Mv_bisim.Strong.minimize lts));
  Alcotest.(check (list string)) "labels" [ "show !GREEN"; "show !RED" ]
    (Mv_lts.Lts.occurring_labels lts)

let test_parser_errors () =
  List.iter
    (fun text ->
       try
         ignore (Parser.spec_of_string text);
         Alcotest.fail ("expected parse error on: " ^ text)
       with Parser.Parse_error _ -> ())
    [
      "init";
      "process P := stop";
      (* missing init *)
      "init stop init stop";
      "process P stop init P";
      "init a ; ";
    ]

let test_typecheck_errors () =
  List.iter
    (fun text ->
       try
         ignore (parse text);
         Alcotest.fail ("expected type error on: " ^ text)
       with Typecheck.Type_error _ -> ())
    [
      "init unknown_process";
      "process P (x : int[0..2]) := stop\ninit P";
      (* arity *)
      "process P := [1] -> stop\ninit P";
      (* non-bool guard *)
      "init g !(1 + true) ; stop";
      (* ill-typed offer *)
      "process P := g ?x:zzz ; stop\ninit P";
      (* unknown enum *)
      "type t = { A }\ntype u = { A }\ninit stop";
      (* duplicate constructor *)
      "process P := stop\nprocess P := stop\ninit P";
      (* duplicate process *)
      "init rate 0 ; stop" (* non-positive rate is a type error *);
    ]

let test_enum_resolution_shadowing () =
  (* a receive variable shadows an enum constructor of the same name *)
  let spec =
    parse
      {|
type t = { A, B }
process P := g ?A:int[0..1] ; h !A ; stop
init P
|}
  in
  let lts = State_space.lts spec in
  (* h must offer the received integer, not the constructor *)
  Alcotest.(check (list string)) "labels"
    [ "g !0"; "g !1"; "h !0"; "h !1" ]
    (Lts.occurring_labels lts)

let test_semantics_moves () =
  let spec = parse "init (a ; stop) [] (i ; stop) [] rate 2.5 ; stop" in
  let moves = Semantics.moves spec spec.Ast.init in
  let labels =
    List.sort compare (List.map (fun (l, _) -> Semantics.label_string l) moves)
  in
  Alcotest.(check (list string)) "moves" [ "a"; "i"; "rate 2.5" ] labels

let test_semantics_guard_and_choice () =
  let spec = parse "init ([1 < 2] -> a ; stop) [] ([2 < 1] -> b ; stop)" in
  let moves = Semantics.moves spec spec.Ast.init in
  Alcotest.(check int) "only true guard" 1 (List.length moves)

let test_semantics_sync_values () =
  (* !1 can only sync with a matching receive value *)
  let spec = parse "init (g !1 ; stop) |[g]| (g ?x:int[0..3] ; h !x ; stop)" in
  let lts = State_space.lts spec in
  Alcotest.(check (list string)) "synced labels" [ "g !1"; "h !1" ]
    (Lts.occurring_labels lts);
  (* mismatched value deadlocks immediately *)
  let stuck = parse "init (g !7 ; stop) |[g]| (g ?x:int[0..3] ; stop)" in
  Alcotest.(check int) "no sync possible" 1 (Lts.nb_states (State_space.lts stuck))

let test_semantics_exit_seq () =
  let spec = parse "init (a ; exit) >> (b ; stop)" in
  let lts = State_space.lts spec in
  (* a, then tau (from exit), then b *)
  Alcotest.(check (list string)) "labels" [ "a"; "b"; "i" ]
    (Lts.occurring_labels lts);
  Alcotest.(check int) "4 states" 4 (Lts.nb_states lts)

let test_semantics_exit_syncs_in_par () =
  (* exit synchronizes across |||: both sides must terminate *)
  let spec = parse "init ((a ; exit) ||| (b ; exit)) >> (c ; stop)" in
  let lts = State_space.lts spec in
  Alcotest.(check (list string)) "labels" [ "a"; "b"; "c"; "i" ]
    (Lts.occurring_labels lts)

let test_semantics_hide_rename () =
  let spec = parse "init hide g in (g !1 ; h !2 ; stop)" in
  Alcotest.(check (list string)) "hidden" [ "h !2"; "i" ]
    (Lts.occurring_labels (State_space.lts spec));
  let spec2 = parse "init rename g -> k in (g !1 ; stop)" in
  Alcotest.(check (list string)) "renamed" [ "k !1" ]
    (Lts.occurring_labels (State_space.lts spec2))

let test_unguarded_recursion () =
  let spec = parse "process P := P\ninit P" in
  try
    ignore (State_space.lts spec);
    Alcotest.fail "expected Unguarded_recursion"
  with Semantics.Unguarded_recursion _ -> ()

let test_normalization_collapses_states () =
  (* without expression normalization, Queue(1-1) and Queue(0) would
     be distinct states *)
  let text =
    {|
process Queue (n : int[0..2]) :=
    [n < 2] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init Queue(0)
|}
  in
  Alcotest.(check int) "3 states" 3 (nb_states text)

let test_max_states_bound () =
  let text = {|
process P (n : int[0..100]) := t ; P(if n < 100 then n + 1 else 0)
init P(0)
|} in
  try
    ignore (State_space.lts ~max_states:10 (parse text));
    Alcotest.fail "expected Too_many_states"
  with Mv_lts.Explore.Too_many_states _ -> ()

let test_pp_parse_round_trip () =
  (* printing a behaviour and re-parsing it yields the same term *)
  let behaviors =
    [
      "stop";
      "exit";
      "(a !1 ; stop)";
      "(g ?x:int[0..3] ; (h !(x + 1) ; stop))";
      "((a ; stop) [] (b ; stop))";
      "((a ; stop) |[a, b]| (b ; stop))";
      "((a ; stop) ||| stop)";
      "(hide g in (g ; stop))";
      "(rename g -> h in (g ; stop))";
      "((a ; exit) >> (b ; stop))";
      "(rate 2.5 ; stop)";
      "([1 < 2] -> (a ; stop))";
    ]
  in
  List.iter
    (fun text ->
       let b = Parser.behavior_of_string text in
       let printed = Format.asprintf "%a" Ast.pp_behavior b in
       let reparsed = Parser.behavior_of_string printed in
       Alcotest.(check bool)
         (Printf.sprintf "round trip: %s -> %s" text printed)
         true (b = reparsed))
    behaviors

let test_comments_and_whitespace () =
  let spec =
    parse "(* a comment (* nested *) *)\ninit (* mid *) a ; stop (* end *)"
  in
  Alcotest.(check int) "parsed through comments" 2
    (Lts.nb_states (State_space.lts spec))

(* Property: the state count of an interleaving of independent cyclic
   processes is the product of the component sizes. *)
let interleaving_prop =
  QCheck2.Test.make ~name:"interleaving multiplies state counts" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 4))
    (fun (n, m) ->
       let cyclic name k gate =
         Printf.sprintf "process %s (x : int[0..%d]) := %s ; %s((x + 1) %% %d)\n"
           name (k - 1) gate name k
       in
       let text =
         cyclic "P" n "a" ^ cyclic "Q" m "b" ^ "init P(0) ||| Q(0)"
       in
       nb_states text = n * m)


(* ---- gate parameters ---- *)

let test_gate_parameters_basic () =
  (* one buffer definition, two instances wired in a chain *)
  let text =
    {|
process Buf [input, output] (n : int[0..2]) :=
    [n < 2] -> input ; Buf[input, output](n + 1)
 [] [n > 0] -> output ; Buf[input, output](n - 1)
init hide mid in (Buf[a, mid](0) |[mid]| Buf[mid, b](0))
|}
  in
  let lts = State_space.lts (parse text) in
  Alcotest.(check (list string)) "gates instantiated" [ "a"; "b"; "i" ]
    (Lts.occurring_labels lts);
  (* the chain is branching-equivalent to itself built from two
     textually distinct buffers *)
  let direct =
    parse
      {|
process Buf1 (n : int[0..2]) :=
    [n < 2] -> a ; Buf1(n + 1) [] [n > 0] -> mid ; Buf1(n - 1)
process Buf2 (n : int[0..2]) :=
    [n < 2] -> mid ; Buf2(n + 1) [] [n > 0] -> b ; Buf2(n - 1)
init hide mid in (Buf1(0) |[mid]| Buf2(0))
|}
  in
  Alcotest.(check bool) "equivalent to hand-written instances" true
    (Mv_bisim.Branching.equivalent lts (State_space.lts direct))

let test_gate_parameters_capture_avoided () =
  (* calling P[h] must not capture the actual gate h under the local
     hide h binder. (The recursion stays outside the hide: a hide
     inside a recursive body would nest new binders on every unfolding
     and diverge, for gate parameters and plain recursion alike.) *)
  let text =
    {|
process P [g] := (hide h in (g ; h ; exit)) >> P[g]
init P[h]
|}
  in
  let lts = State_space.lts (parse text) in
  Alcotest.(check (list string)) "outer h stays visible" [ "h"; "i" ]
    (Lts.occurring_labels lts)

let test_gate_parameters_errors () =
  List.iter
    (fun text ->
       try
         ignore (parse text);
         Alcotest.fail ("expected type error on: " ^ text)
       with Typecheck.Type_error _ -> ())
    [
      "process P [g] := g ; P[g]\ninit P";
      (* missing gate arg *)
      "process P := stop\ninit P[a]";
      (* unexpected gate arg *)
      "process P [g] := g ; stop\ninit P[i]";
      (* reserved gate *)
      "process P [g, g] := g ; stop\ninit P[a]" (* duplicate formal *);
    ]

let test_gate_parameters_round_trip () =
  let b = Parser.behavior_of_string "P[a, b](1 + 1)" in
  let printed = Format.asprintf "%a" Ast.pp_behavior b in
  Alcotest.(check bool) "pp/parse round trip with gates" true
    (b = Parser.behavior_of_string printed)

(* ---- constants ---- *)

let test_const_declarations () =
  let text =
    {|
type mode = { FAST, SLOW }
const LIMIT = 2 + 1
const START = LIMIT - 3
const M = FAST
process Count (n : int[0..3]) :=
    [n < LIMIT] -> tick ; Count(n + 1)
 [] [n == LIMIT] -> show !M ; Count(START)
init Count(START)
|}
  in
  let lts = State_space.lts (parse text) in
  Alcotest.(check int) "LIMIT+1 states" 4 (Lts.nb_states lts);
  Alcotest.(check bool) "enum const resolved" true
    (List.mem "show !FAST" (Lts.occurring_labels lts))

let test_const_shadowed_by_param () =
  let text =
    {|
const n = 7
process P (n : int[0..1]) := g !n ; P(n)
init P(0)
|}
  in
  let lts = State_space.lts (parse text) in
  Alcotest.(check (list string)) "param wins" [ "g !0" ]
    (Lts.occurring_labels lts)

let test_offer_binding_order () =
  (* a receive earlier in the same action is visible to later sends *)
  let spec = parse "init g ?x:int[1..2] !(x + 1) ; stop" in
  Alcotest.(check (list string)) "bound within action" [ "g !1 !2"; "g !2 !3" ]
    (Lts.occurring_labels (State_space.lts spec))

let test_runtime_guard_error () =
  (* a guard that divides by zero surfaces as a semantics error *)
  let spec = parse "process P (n : int[0..1]) := [1 / n == 1] -> g ; P(n)\ninit P(0)" in
  try
    ignore (State_space.lts spec);
    Alcotest.fail "expected Semantics_error"
  with Mv_calc.Semantics.Semantics_error _ -> ()

let test_partial_exit_blocks () =
  (* exit synchronizes: if one side cannot terminate, neither can the
     composition *)
  let spec = parse "init ((a ; exit) ||| (b ; stop)) >> (c ; stop)" in
  let lts = State_space.lts spec in
  Alcotest.(check bool) "c never happens" false
    (List.mem "c" (Lts.occurring_labels lts))

let test_rename_chained () =
  (* inner rename maps f to g; the outer one then maps that g to h *)
  let spec = parse "init rename g -> h in rename f -> g in (f ; stop)" in
  Alcotest.(check (list string)) "renames compose outward" [ "h" ]
    (Lts.occurring_labels (State_space.lts spec))

let test_exit_values () =
  (* exit values flow through >> accept *)
  let spec = parse "init (a ; exit(2 + 1)) >> accept n : int[0..5] in out !n ; stop" in
  let lts = State_space.lts spec in
  Alcotest.(check (list string)) "value passed" [ "a"; "i"; "out !3" ]
    (Lts.occurring_labels lts);
  (* exit values must agree to synchronize *)
  let agree = parse "init (exit(1) ||| exit(1)) >> accept n : int[0..3] in g !n ; stop" in
  Alcotest.(check bool) "matching exits join" true
    (List.mem "g !1" (Lts.occurring_labels (State_space.lts agree)));
  let disagree = parse "init (exit(1) ||| exit(2)) >> accept n : int[0..3] in g !n ; stop" in
  Alcotest.(check (list string)) "mismatched exits block" []
    (Lts.occurring_labels (State_space.lts disagree));
  (* arity mismatch is a runtime semantics error *)
  let bad = parse "init exit(1) >> (g ; stop)" in
  (try
     ignore (State_space.lts bad);
     Alcotest.fail "expected Semantics_error"
   with Semantics.Semantics_error _ -> ());
  (* open exit (not consumed by >>) shows its values in the label *)
  let open_exit = parse "init exit(4, true)" in
  Alcotest.(check (list string)) "labelled exit" [ "exit !4 !true" ]
    (Lts.occurring_labels (State_space.lts open_exit))

let test_first_deadlock () =
  Alcotest.(check (option (list string))) "shallow deadlock found"
    (Some [ "a"; "b" ])
    (State_space.first_deadlock (parse "init a ; b ; stop"));
  Alcotest.(check (option (list string))) "live system" None
    (State_space.first_deadlock (parse "process P := a ; P\ninit P"));
  (* matches the post-hoc trace search *)
  let spec = parse "init (a ; stop) [] (b ; c ; stop)" in
  let on_the_fly = Option.get (State_space.first_deadlock spec) in
  let post_hoc =
    Option.get (Mv_lts.Trace.shortest_to_deadlock (State_space.lts spec))
  in
  Alcotest.(check int) "same depth" (List.length post_hoc.Mv_lts.Trace.labels)
    (List.length on_the_fly)

let test_choice_sugar () =
  (* choice x : int[0..2] [] g !x ; stop == three explicit branches *)
  let sugared = parse "init choice x : int[0..2] [] g !x ; stop" in
  let explicit = parse "init (g !0 ; stop) [] (g !1 ; stop) [] (g !2 ; stop)" in
  Alcotest.(check bool) "desugared equivalently" true
    (Mv_bisim.Strong.equivalent (State_space.lts sugared)
       (State_space.lts explicit));
  let booleans = parse "init choice b : bool [] flag !b ; stop" in
  Alcotest.(check (list string)) "bool choice"
    [ "flag !false"; "flag !true" ]
    (Lts.occurring_labels (State_space.lts booleans));
  try
    ignore (parse "type t = { A }\ninit choice x : t [] g !x ; stop");
    Alcotest.fail "expected parse error on enum choice"
  with Parser.Parse_error _ -> ()

let test_spec_pp_round_trip () =
  let text =
    {|
type color = { RED, GREEN }
process Buf [input, output] (n : int[0..2], c : color) :=
    [n < 2] -> input ; Buf[input, output](n + 1, c)
 [] [n > 0] -> output !c ; Buf[input, output](n - 1, c)
init hide m in (Buf[a, m](0, RED) |[m]| Buf[m, b](0, GREEN))
|}
  in
  let spec = parse text in
  let printed = Mv_calc.Ast.spec_to_string spec in
  let reparsed = Parser.spec_of_string_checked printed in
  Alcotest.(check bool) "round-tripped spec is strongly equivalent" true
    (Mv_bisim.Strong.equivalent (State_space.lts spec) (State_space.lts reparsed))

let test_const_errors () =
  (try
     ignore (parse "const C = 1 / 0
init stop");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error _ -> ());
  try
    ignore (parse "const C = x + 1
init stop");
    Alcotest.fail "expected parse error (unbound)"
  with Parser.Parse_error _ -> ()

let suite =
  [
    Alcotest.test_case "value printing" `Quick test_value_printing;
    Alcotest.test_case "type domains" `Quick test_ty_domain;
    Alcotest.test_case "expression evaluation" `Quick test_expr_eval;
    Alcotest.test_case "expression errors" `Quick test_expr_errors;
    Alcotest.test_case "expression subst/free vars" `Quick test_expr_subst;
    Alcotest.test_case "spec parsing basics" `Quick test_spec_parse_basics;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "enum resolution respects shadowing" `Quick
      test_enum_resolution_shadowing;
    Alcotest.test_case "semantics: basic moves" `Quick test_semantics_moves;
    Alcotest.test_case "semantics: guards in choice" `Quick
      test_semantics_guard_and_choice;
    Alcotest.test_case "semantics: value negotiation" `Quick
      test_semantics_sync_values;
    Alcotest.test_case "semantics: exit and >>" `Quick test_semantics_exit_seq;
    Alcotest.test_case "semantics: exit syncs in par" `Quick
      test_semantics_exit_syncs_in_par;
    Alcotest.test_case "semantics: hide/rename" `Quick test_semantics_hide_rename;
    Alcotest.test_case "unguarded recursion detected" `Quick
      test_unguarded_recursion;
    Alcotest.test_case "normalization collapses states" `Quick
      test_normalization_collapses_states;
    Alcotest.test_case "max_states bound" `Quick test_max_states_bound;
    Alcotest.test_case "pp/parse round trip" `Quick test_pp_parse_round_trip;
    Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
    QCheck_alcotest.to_alcotest interleaving_prop;
    Alcotest.test_case "gate parameters: instantiation" `Quick
      test_gate_parameters_basic;
    Alcotest.test_case "gate parameters: capture avoided" `Quick
      test_gate_parameters_capture_avoided;
    Alcotest.test_case "gate parameters: errors" `Quick
      test_gate_parameters_errors;
    Alcotest.test_case "gate parameters: round trip" `Quick
      test_gate_parameters_round_trip;
    Alcotest.test_case "const declarations" `Quick test_const_declarations;
    Alcotest.test_case "const shadowed by params" `Quick
      test_const_shadowed_by_param;
    Alcotest.test_case "const errors" `Quick test_const_errors;
    Alcotest.test_case "spec pp round trip" `Quick test_spec_pp_round_trip;
    Alcotest.test_case "choice-over-values sugar" `Quick test_choice_sugar;
    Alcotest.test_case "exit values" `Quick test_exit_values;
    Alcotest.test_case "on-the-fly deadlock search" `Quick test_first_deadlock;
    Alcotest.test_case "offer binding order" `Quick test_offer_binding_order;
    Alcotest.test_case "runtime guard error" `Quick test_runtime_guard_error;
    Alcotest.test_case "partial exit blocks" `Quick test_partial_exit_blocks;
    Alcotest.test_case "rename chains" `Quick test_rename_chained;
  ]
