lib/compose/parallel.mli: Mv_lts
