lib/compose/net.mli: Mv_lts
