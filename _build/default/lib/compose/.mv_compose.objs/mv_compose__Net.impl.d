lib/compose/net.ml: List Mv_bisim Mv_lts Option Parallel Printf String
