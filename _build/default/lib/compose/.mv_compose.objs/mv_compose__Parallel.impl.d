lib/compose/parallel.ml: Array Hashtbl List Mv_lts Queue
