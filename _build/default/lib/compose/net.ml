module Lts = Mv_lts.Lts

type node =
  | Leaf of string * Lts.t
  | Par of string list * node * node
  | Hide of string list * node
  | Rename of (string * string) list * node

type strategy = [ `Monolithic | `Compositional ]

type step = { description : string; states : int; transitions : int }

type report = {
  result : Lts.t;
  steps : step list;
  peak_states : int;
}

let rec describe = function
  | Leaf (name, _) -> name
  | Par (gates, a, b) ->
    Printf.sprintf "(%s |[%s]| %s)" (describe a) (String.concat "," gates)
      (describe b)
  | Hide (gates, n) ->
    Printf.sprintf "(hide %s in %s)" (String.concat "," gates) (describe n)
  | Rename (_, n) -> Printf.sprintf "(rename in %s)" (describe n)

let evaluate ~strategy node =
  let steps = ref [] in
  let record description lts =
    steps :=
      { description; states = Lts.nb_states lts;
        transitions = Lts.nb_transitions lts }
      :: !steps;
    lts
  in
  let reduce description lts =
    match strategy with
    | `Monolithic -> record description lts
    | `Compositional ->
      let lts = record description lts in
      record (description ^ " [min]") (Mv_bisim.Branching.minimize lts)
  in
  let rec eval node =
    match node with
    | Leaf (name, lts) -> reduce name lts
    | Par (gates, a, b) ->
      let la = eval a and lb = eval b in
      reduce (describe node) (Parallel.compose ~sync:gates la lb)
    | Hide (gates, n) ->
      let inner = eval n in
      reduce (describe node) (Lts.hide inner ~gates)
    | Rename (pairs, n) ->
      let inner = eval n in
      let renaming name =
        List.assoc_opt (Mv_lts.Label.gate name) pairs
        |> Option.map (fun g ->
            (* keep offers, replace the gate *)
            match String.index_opt name ' ' with
            | None -> g
            | Some i -> g ^ String.sub name i (String.length name - i))
      in
      reduce (describe node) (Lts.rename inner renaming)
  in
  let result = eval node in
  let steps = List.rev !steps in
  let peak_states =
    List.fold_left (fun acc s -> max acc s.states) 0 steps
  in
  { result; steps; peak_states }

let par_list gates = function
  | [] -> invalid_arg "Net.par_list: empty"
  | n :: rest -> List.fold_left (fun acc x -> Par (gates, acc, x)) n rest
