(** NoC structures built from routers, and the timed hop-latency
    model.

    {!chain} links [length] routers in a pipeline (output port 1 of
    router [k] feeds input port 0 of router [k+1]) and is the workload
    of the compositional-verification experiment: the monolithic
    product explodes with the chain length while the
    minimize-then-compose strategy stays flat.

    {!hop_chain_spec} is the stochastic single-packet model used for
    latency prediction: a closed loop where a packet traverses [hops]
    exponential router stages (optionally contended by cross traffic)
    and returns to the injector. Mean end-to-end latency is exact by
    renewal analysis: [1/throughput(deliver) - 1/inject]. *)

(** [chain ~length] — composition network over router LTSs; all
    external ports stay visible, link gates are hidden. *)
val chain : length:int -> Mv_compose.Net.node

(** [hop_chain_spec ~hops ~inject ~hop_rate ~cross] — [cross] is the
    rate of interfering traffic at every stage ([None] = no
    contention). Gates kept visible: [deliver]. *)
val hop_chain_spec :
  hops:int -> inject:float -> hop_rate:float -> cross:float option -> Mv_calc.Ast.spec

(** Mean packet latency of {!hop_chain_spec} through the performance
    pipeline. *)
val mean_packet_latency :
  hops:int -> inject:float -> hop_rate:float -> cross:float option -> float
