(** A 2x2 FAUST-like mesh with XY routing.

    Destinations are encoded as [d = x + 2*y] in [0..3]. Every router
    applies XY (dimension-ordered) routing: correct the x coordinate
    first, then y, then deliver locally. Two router designs:

    - {b single-buffer} ([Shared_buffer]): one packet slot per router,
      shared by all input ports. XY ordering does not protect shared
      buffers: two routers each holding a packet destined for the other
      wait forever — the classical head-of-line deadlock, which the
      deadlock checker finds with a short witness trace.
    - {b port-buffered} ([Port_buffered]): one independent slot per
      input port (the FAUST routers have per-link input latches). The
      channel dependency graph of XY routing is acyclic (x-links ->
      y-links -> local), so the mesh is deadlock-free.

    Routers are instances of {e one} gate-parameterized MVL process —
    the structural modeling style of the paper ("bottom-up using
    composition of sub-modules"). *)

type design = Shared_buffer | Port_buffered

val design_name : design -> string

(** A traffic flow: packets enter at the local port of [node] and are
    addressed to [dest] (a node). *)
type flow = { node : int * int; dest : int * int }

(** The two crossing flows that exhibit the shared-buffer deadlock:
    (0,0) -> (1,1) and (1,0) -> (0,0). *)
val crossing_flows : flow list

(** [spec design ~flows] — the closed mesh: one repeating source per
    flow, sinks everywhere. Raises [Invalid_argument] on coordinates
    outside the 2x2 grid. *)
val spec : design -> flows:flow list -> Mv_calc.Ast.spec

(** The mesh-level properties: deadlock freedom, no misdelivery (a
    packet only exits at its destination), and reachability of delivery
    for every flow. *)
val properties : flows:flow list -> (string * Mv_mcl.Formula.t) list

(** Shortest deadlock witness of the closed mesh ([None] when
    deadlock-free). *)
val deadlock_witness : design -> flows:flow list -> Mv_lts.Trace.t option
