(** A FAUST-like asynchronous network-on-chip router, modeled in CHP
    and translated to MVL (the pipeline of the paper's §2-3: the FAUST
    router "has been verified formally" from its CHP description).

    The scaled-down router has two input ports and two output ports.
    Each input controller reads a packet (its header is the destination
    port, 0 or 1) and forwards it to the requested output; each output
    port arbitrates between the two inputs. All communication is
    asynchronous rendezvous.

    Channels of [chp ~id]:
    - inputs [in0_<id>], [in1_<id>] (payload: destination [0..1]);
    - outputs [out0_<id>], [out1_<id>];
    - internal request channels [rq<i><o>_<id>]. *)

(** The CHP description of one router. *)
val chp : id:string -> Mv_chp.Chp.process

(** Translated MVL specification of one router (init = router alone,
    open on its channels). *)
val spec : id:string -> Mv_calc.Ast.spec

(** Router composed with saturating traffic sources on both inputs and
    sinks on both outputs — the closed system used for verification. *)
val closed_spec : id:string -> Mv_calc.Ast.spec

(** One packet injected at [input] with destination [dest], everything
    else quiet. Inevitable delivery holds on this scenario without
    fairness assumptions (under saturating cross-traffic it would
    not). *)
val single_packet_spec : id:string -> input:int -> dest:int -> Mv_calc.Ast.spec

(** The functional properties checked on {!closed_spec}:
    deadlock-freedom, no misrouting (a packet with destination [d]
    never exits at the other port), and reachability of delivery. *)
val properties : id:string -> (string * Mv_mcl.Formula.t) list

(** Property for {!single_packet_spec}: the packet is inevitably
    delivered at port [dest]. *)
val delivery_property : id:string -> dest:int -> string * Mv_mcl.Formula.t

(** Generated LTS of one router with internal request channels hidden
    (a leaf for mesh composition). *)
val lts : id:string -> Mv_lts.Lts.t
