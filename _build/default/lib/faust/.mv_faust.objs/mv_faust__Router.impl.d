lib/faust/router.ml: Mv_calc Mv_chp Mv_mcl Printf
