lib/faust/mesh.ml: List Mv_calc Mv_lts Mv_mcl Printf String
