lib/faust/router.mli: Mv_calc Mv_chp Mv_lts Mv_mcl
