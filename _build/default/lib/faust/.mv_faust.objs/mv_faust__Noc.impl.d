lib/faust/noc.ml: Buffer Mv_calc Mv_compose Mv_core Printf Router
