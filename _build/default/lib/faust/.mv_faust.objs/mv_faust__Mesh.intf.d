lib/faust/mesh.mli: Mv_calc Mv_lts Mv_mcl
