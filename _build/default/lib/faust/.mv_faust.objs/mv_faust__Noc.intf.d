lib/faust/noc.mli: Mv_calc Mv_compose
