module Chp = Mv_chp.Chp
module Ast = Mv_calc.Ast
module Expr = Mv_calc.Expr
module Ty = Mv_calc.Ty
module Formula = Mv_mcl.Formula
module Action = Mv_mcl.Action_formula

let dest_ty = Ty.TIntRange (0, 1)

let channel name ~id = Printf.sprintf "%s_%s" name id

(* Input controller [i]: read a packet header, forward it to the
   requested output's arbiter. *)
let input_controller ~id i =
  let d = Printf.sprintf "d%d" i in
  Chp.Loop
    (Chp.Seq
       ( Chp.Receive (channel (Printf.sprintf "in%d" i) ~id, d, dest_ty),
         Chp.Select
           [
             ( Expr.Binop (Expr.Eq, Expr.Var d, Ast.vint 0),
               Chp.Send (channel (Printf.sprintf "rq%d0" i) ~id, Expr.Var d) );
             ( Expr.Binop (Expr.Eq, Expr.Var d, Ast.vint 1),
               Chp.Send (channel (Printf.sprintf "rq%d1" i) ~id, Expr.Var d) );
           ] ))

(* Output arbiter [o]: serve whichever input controller offers a
   packet (communication-guarded selection). *)
let output_arbiter ~id o =
  let x = Printf.sprintf "x%d" o in
  let branch i =
    ( Ast.vbool true,
      Chp.Seq
        ( Chp.Receive (channel (Printf.sprintf "rq%d%d" i o) ~id, x, dest_ty),
          Chp.Send (channel (Printf.sprintf "out%d" o) ~id, Expr.Var x) ) )
  in
  Chp.Loop (Chp.Select [ branch 0; branch 1 ])

let chp ~id =
  Chp.Par
    ( Chp.Par (input_controller ~id 0, input_controller ~id 1),
      Chp.Par (output_arbiter ~id 0, output_arbiter ~id 1) )

let spec ~id = Chp.spec ~prefix:("router_" ^ id) (chp ~id)

let internal_gates ~id =
  [ channel "rq00" ~id; channel "rq01" ~id; channel "rq10" ~id;
    channel "rq11" ~id ]

let environment_text ~id =
  Printf.sprintf
    {|
process Src0 := %s !0 ; Src0 [] %s !1 ; Src0
process Src1 := %s !0 ; Src1 [] %s !1 ; Src1
process Sink0 := %s ?x:int[0..1] ; Sink0
process Sink1 := %s ?x:int[0..1] ; Sink1
|}
    (channel "in0" ~id) (channel "in0" ~id) (channel "in1" ~id)
    (channel "in1" ~id) (channel "out0" ~id) (channel "out1" ~id)

let closed_spec ~id =
  let router = spec ~id in
  let env = Mv_calc.Parser.spec_of_string_checked (environment_text ~id ^ "\ninit stop\n") in
  let init =
    Ast.Par
      ( Ast.Gates [ channel "in0" ~id; channel "in1" ~id ],
        Ast.Par (Ast.Gates [], Ast.Call ("Src0", [], []), Ast.Call ("Src1", [], [])),
        Ast.Par
          ( Ast.Gates [ channel "out0" ~id; channel "out1" ~id ],
            Ast.Hide (internal_gates ~id, router.Ast.init),
            Ast.Par (Ast.Gates [], Ast.Call ("Sink0", [], []), Ast.Call ("Sink1", [], []))
          ) )
  in
  {
    Ast.enums = [];
    processes = router.Ast.processes @ env.Ast.processes;
    init;
  }

(* A single packet injected at [input] with destination [dest], quiet
   otherwise: used for the inevitable-delivery property (which needs
   the absence of competing infinite traffic to hold without fairness
   assumptions). *)
let single_packet_spec ~id ~input ~dest =
  if input < 0 || input > 1 || dest < 0 || dest > 1 then
    invalid_arg "Router.single_packet_spec";
  let router = spec ~id in
  let src =
    Ast.act (channel (Printf.sprintf "in%d" input) ~id) [ Ast.Send (Ast.vint dest) ]
      Ast.Stop
  in
  let sinks_text =
    Printf.sprintf
      {|
process Sink0 := %s ?x:int[0..1] ; Sink0
process Sink1 := %s ?x:int[0..1] ; Sink1
|}
      (channel "out0" ~id) (channel "out1" ~id)
  in
  let env = Mv_calc.Parser.spec_of_string_checked (sinks_text ^ "\ninit stop\n") in
  let init =
    Ast.Par
      ( Ast.Gates [ channel "in0" ~id; channel "in1" ~id ],
        src,
        Ast.Par
          ( Ast.Gates [ channel "out0" ~id; channel "out1" ~id ],
            Ast.Hide (internal_gates ~id, router.Ast.init),
            Ast.Par (Ast.Gates [], Ast.Call ("Sink0", [], []), Ast.Call ("Sink1", [], []))
          ) )
  in
  { Ast.enums = []; processes = router.Ast.processes @ env.Ast.processes; init }

let properties ~id =
  let out o = channel (Printf.sprintf "out%d" o) ~id in
  let misroute o wrong =
    Formula.Macro.never (Action.Name (Printf.sprintf "%s !%d" (out o) wrong))
  in
  [
    ("deadlock freedom", Formula.Macro.deadlock_free);
    ("no misroute to port 0", misroute 0 1);
    ("no misroute to port 1", misroute 1 0);
    ( "packet for 0 keeps delivery reachable",
      Formula.Macro.always
        (Formula.Implies
           ( Formula.Macro.can_do (Action.Gate (channel "in0" ~id)),
             Formula.Macro.possibly
               (Formula.Macro.can_do (Action.Gate (out 0)))
             )) );
  ]

let delivery_property ~id ~dest =
  ( Printf.sprintf "single packet to %d is inevitably delivered" dest,
    Formula.Macro.inevitably_action
      (Action.Gate (channel (Printf.sprintf "out%d" dest) ~id)) )

let lts ~id =
  let open_router = spec ~id in
  let hidden =
    { open_router with Ast.init = Ast.Hide (internal_gates ~id, open_router.Ast.init) }
  in
  Mv_calc.State_space.lts hidden
