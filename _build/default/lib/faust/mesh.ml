module Formula = Mv_mcl.Formula
module Action = Mv_mcl.Action_formula

type design = Shared_buffer | Port_buffered

let design_name = function
  | Shared_buffer -> "shared buffer"
  | Port_buffered -> "port buffered"

let code ~x ~y = x + (2 * y)

let node_name ~x ~y = Printf.sprintf "%d%d" x y

let local_in ~x ~y = Printf.sprintf "l%si" (node_name ~x ~y)
let local_out ~x ~y = Printf.sprintf "l%so" (node_name ~x ~y)

(* One packet slot shared by the whole router: the design the deadlock
   checker rejects. *)
let shared_buffer_router =
  {|
process Router [lin, lout, xin, xout, yin, yout] (myx : int[0..1], myy : int[0..1]) :=
    lin ?d:int[0..3] ; Fwd[lin, lout, xin, xout, yin, yout](myx, myy, d)
 [] xin ?d:int[0..3] ; Fwd[lin, lout, xin, xout, yin, yout](myx, myy, d)
 [] yin ?d:int[0..3] ; Fwd[lin, lout, xin, xout, yin, yout](myx, myy, d)
process Fwd [lin, lout, xin, xout, yin, yout] (myx : int[0..1], myy : int[0..1], d : int[0..3]) :=
    [d % 2 != myx] -> xout !d ; Router[lin, lout, xin, xout, yin, yout](myx, myy)
 [] [d % 2 == myx and d / 2 != myy] -> yout !d ; Router[lin, lout, xin, xout, yin, yout](myx, myy)
 [] [d % 2 == myx and d / 2 == myy] -> lout !d ; Router[lin, lout, xin, xout, yin, yout](myx, myy)
|}

(* One slot per input port (per-link input latches, as in FAUST):
   XY routing's acyclic channel dependencies make this deadlock-free. *)
let port_buffered_router =
  {|
process Port [input, lout, xout, yout] (myx : int[0..1], myy : int[0..1]) :=
    input ?d:int[0..3] ;
    (   [d % 2 != myx] -> xout !d ; Port[input, lout, xout, yout](myx, myy)
     [] [d % 2 == myx and d / 2 != myy] -> yout !d ; Port[input, lout, xout, yout](myx, myy)
     [] [d % 2 == myx and d / 2 == myy] -> lout !d ; Port[input, lout, xout, yout](myx, myy))
|}

let environment =
  {|
process Src [inject] (d : int[0..3]) := inject !d ; Src[inject](d)
process Sink [out] := out ?d:int[0..3] ; Sink[out]
|}

type flow = { node : int * int; dest : int * int }

let crossing_flows =
  [ { node = (0, 0); dest = (1, 1) }; { node = (1, 0); dest = (0, 0) } ]

(* router instance gates: (lin, lout, xin, xout, yin, yout) per node *)
let wiring = function
  | 0, 0 -> ("l00i", "l00o", "xb", "xa", "yb", "ya")
  | 1, 0 -> ("l10i", "l10o", "xa", "xb", "yd", "yc")
  | 0, 1 -> ("l01i", "l01o", "xd", "xc", "ya", "yb")
  | 1, 1 -> ("l11i", "l11o", "xc", "xd", "yc", "yd")
  | _ -> invalid_arg "Mesh: coordinates must be in the 2x2 grid"

let router_instance design (x, y) =
  let lin, lout, xin, xout, yin, yout = wiring (x, y) in
  match design with
  | Shared_buffer ->
    Printf.sprintf "Router[%s, %s, %s, %s, %s, %s](%d, %d)" lin lout xin xout
      yin yout x y
  | Port_buffered ->
    Printf.sprintf
      "(Port[%s, %s, %s, %s](%d, %d) ||| Port[%s, %s, %s, %s](%d, %d) ||| \
       Port[%s, %s, %s, %s](%d, %d))"
      lin lout xout yout x y xin lout xout yout x y yin lout xout yout x y

let all_nodes = [ (0, 0); (1, 0); (0, 1); (1, 1) ]

let spec design ~flows =
  if flows = [] then invalid_arg "Mesh.spec: at least one flow";
  List.iter
    (fun { node; dest } ->
       ignore (wiring node);
       ignore (wiring dest))
    flows;
  let router = router_instance design in
  let mesh =
    Printf.sprintf
      "((%s |[xa, xb]| %s) |[ya, yb, yc, yd]| (%s |[xc, xd]| %s))"
      (router (0, 0)) (router (1, 0)) (router (0, 1)) (router (1, 1))
  in
  let srcs =
    String.concat " ||| "
      (List.map
         (fun { node = x, y; dest = dx, dy } ->
            Printf.sprintf "Src[%s](%d)" (local_in ~x ~y) (code ~x:dx ~y:dy))
         flows)
  in
  let sinks =
    String.concat " ||| "
      (List.map (fun (x, y) -> Printf.sprintf "Sink[%s]" (local_out ~x ~y))
         all_nodes)
  in
  (* every local input participates in the source synchronization, so
     the inputs of nodes without a flow are closed off (an unsynced
     open gate would act as a saturating source) *)
  let inject_gates =
    String.concat ", " (List.map (fun (x, y) -> local_in ~x ~y) all_nodes)
  in
  let out_gates =
    String.concat ", " (List.map (fun (x, y) -> local_out ~x ~y) all_nodes)
  in
  let text =
    (match design with
     | Shared_buffer -> shared_buffer_router
     | Port_buffered -> port_buffered_router)
    ^ environment
    ^ Printf.sprintf "init ((%s) |[%s]| %s) |[%s]| (%s)\n" srcs inject_gates
        mesh out_gates sinks
  in
  Mv_calc.Parser.spec_of_string_checked text

let properties ~flows =
  let no_misdelivery =
    List.map
      (fun (x, y) ->
         let out = local_out ~x ~y in
         let own = Printf.sprintf "%s !%d" out (code ~x ~y) in
         ( Printf.sprintf "only packets for (%d,%d) exit at %s" x y out,
           Formula.Macro.never
             (Action.And (Action.Gate out, Action.Not (Action.Name own))) ))
      all_nodes
  in
  let deliverable =
    List.map
      (fun { node = sx, sy; dest = x, y } ->
         let label = Printf.sprintf "%s !%d" (local_out ~x ~y) (code ~x ~y) in
         ( Printf.sprintf "flow (%d,%d)->(%d,%d): delivery reachable" sx sy x y,
           Formula.Macro.possibly (Formula.Macro.can_do (Action.Name label)) ))
      flows
  in
  (("mesh deadlock freedom", Formula.Macro.deadlock_free) :: no_misdelivery)
  @ deliverable

let deadlock_witness design ~flows =
  let lts = Mv_calc.State_space.lts (spec design ~flows) in
  Mv_lts.Trace.shortest_to_deadlock lts
