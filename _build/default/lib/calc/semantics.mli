(** Structural operational semantics of MVL behaviours.

    [moves spec b] computes the outgoing transitions of a closed
    behaviour term. Input offers are expanded over their finite
    domains; value matching in synchronizations falls out of the
    expansion (only moves with identical ground labels synchronize). *)

type move_label =
  | Tau
  | Exit_move of Value.t list (** termination, with its exit values *)
  | Rate_move of float
  | Act of string * string list (** gate, printed offer values *)

exception Semantics_error of string

(** Raised when unfolding process calls more than the fuel bound
    without reaching an action (unguarded recursion such as
    [process P := P]). *)
exception Unguarded_recursion of string

(** Printed label: ["i"], ["exit"], ["rate 2.5"], ["PUSH !3"]. *)
val label_string : move_label -> string

(** Outgoing moves of a behaviour. [fuel] bounds call unfolding
    (default 100). *)
val moves : ?fuel:int -> Ast.spec -> Ast.behavior -> (move_label * Ast.behavior) list
