(** Data types of the MVL value language.

    All types are finite so that input offers ([?x:T]) can be expanded
    during state-space generation. Enum types are referenced by name and
    resolved against the specification's declarations. *)

type t =
  | TBool
  | TIntRange of int * int (** inclusive bounds *)
  | TEnum of string (** declared enum type, by name *)

(** Enum declarations: type name -> constructor names. *)
type enums = (string * string list) list

val equal : t -> t -> bool

(** [domain enums ty] enumerates the values of [ty] in a canonical
    order. Raises [Invalid_argument] for an undeclared enum or an empty
    range. *)
val domain : enums -> t -> Value.t list

(** [check_value enums ty v] — does [v] inhabit [ty]? *)
val check_value : enums -> t -> Value.t -> bool

val pp : Format.formatter -> t -> unit
