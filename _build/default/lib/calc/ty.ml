type t = TBool | TIntRange of int * int | TEnum of string

type enums = (string * string list) list

let equal a b =
  match a, b with
  | TBool, TBool -> true
  | TIntRange (l1, h1), TIntRange (l2, h2) -> l1 = l2 && h1 = h2
  | TEnum n1, TEnum n2 -> String.equal n1 n2
  | (TBool | TIntRange _ | TEnum _), _ -> false

let constructors enums name =
  match List.assoc_opt name enums with
  | Some cs -> cs
  | None -> invalid_arg ("Ty.domain: undeclared enum type " ^ name)

let domain enums = function
  | TBool -> [ Value.VBool false; Value.VBool true ]
  | TIntRange (lo, hi) ->
    if lo > hi then invalid_arg "Ty.domain: empty range";
    List.init (hi - lo + 1) (fun i -> Value.VInt (lo + i))
  | TEnum name -> List.map (fun c -> Value.VEnum c) (constructors enums name)

let check_value enums ty v =
  match ty, v with
  | TBool, Value.VBool _ -> true
  | TIntRange (lo, hi), Value.VInt n -> lo <= n && n <= hi
  | TEnum name, Value.VEnum c -> List.mem c (constructors enums name)
  | (TBool | TIntRange _ | TEnum _), (Value.VBool _ | Value.VInt _ | Value.VEnum _)
    -> false

let pp fmt = function
  | TBool -> Format.pp_print_string fmt "bool"
  | TIntRange (lo, hi) -> Format.fprintf fmt "int[%d..%d]" lo hi
  | TEnum name -> Format.pp_print_string fmt name
