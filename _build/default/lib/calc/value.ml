type t = VBool of bool | VInt of int | VEnum of string

let equal a b =
  match a, b with
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> x = y
  | VEnum x, VEnum y -> String.equal x y
  | (VBool _ | VInt _ | VEnum _), _ -> false

let compare = Stdlib.compare

let to_string = function
  | VBool b -> string_of_bool b
  | VInt n -> string_of_int n
  | VEnum c -> c

let pp fmt v = Format.pp_print_string fmt (to_string v)
