lib/calc/semantics.mli: Ast Value
