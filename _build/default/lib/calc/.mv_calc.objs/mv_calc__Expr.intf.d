lib/calc/expr.mli: Format Value
