lib/calc/parser.mli: Ast Expr Mv_util Ty
