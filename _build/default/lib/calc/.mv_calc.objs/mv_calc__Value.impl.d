lib/calc/value.ml: Format Stdlib String
