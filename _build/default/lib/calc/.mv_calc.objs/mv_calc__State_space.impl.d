lib/calc/state_space.ml: Ast Hashtbl List Marshal Mv_lts Queue Semantics
