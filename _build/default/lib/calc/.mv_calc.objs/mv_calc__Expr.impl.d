lib/calc/expr.ml: Format List Value
