lib/calc/ast.mli: Expr Format Ty Value
