lib/calc/typecheck.mli: Ast Expr Format Ty
