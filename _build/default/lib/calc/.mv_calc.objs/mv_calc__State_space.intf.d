lib/calc/state_space.mli: Ast Mv_lts
