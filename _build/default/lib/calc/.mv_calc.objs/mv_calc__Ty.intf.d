lib/calc/ty.mli: Format Value
