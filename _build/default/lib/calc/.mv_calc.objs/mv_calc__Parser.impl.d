lib/calc/parser.ml: Ast Expr List Mv_util Printf Ty Typecheck Value
