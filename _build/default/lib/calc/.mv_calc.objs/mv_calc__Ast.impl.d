lib/calc/ast.ml: Expr Format List String Ty Value
