lib/calc/typecheck.ml: Ast Expr Format Hashtbl List Printf String Ty Value
