lib/calc/ty.ml: Format List String Value
