lib/calc/semantics.ml: Ast Expr List Printf String Ty Value
