lib/calc/value.mli: Format
