(** Ground values. *)

type t =
  | VBool of bool
  | VInt of int
  | VEnum of string (** constructor name *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** Printed form used inside transition labels ([true], [42], [RED]). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
