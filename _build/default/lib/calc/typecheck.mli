(** Static checks on MVL specifications.

    Two passes:
    - {!resolve_spec} turns identifiers that name declared enum
      constructors into constants (the parser cannot distinguish them
      from variables);
    - {!check_spec} verifies well-formedness: unique process and enum
      names, declared enum types, bound variables, kind-correct
      expressions, boolean guards, call arities, and positive rates.

    Expression typing is by {e kind} ([bool], [int], or a named enum);
    integer range bounds are only enforced at binding sites (process
    arguments are range-checked dynamically during exploration). *)

exception Type_error of string

type kind = KBool | KInt | KEnum of string

(** Resolve enum constructors in every expression of the spec (bound
    variables shadow constructors). Raises {!Type_error} if an enum
    constructor is declared twice across types. *)
val resolve_spec : Ast.spec -> Ast.spec

(** Check the whole specification. *)
val check_spec : Ast.spec -> unit

(** [infer spec env e] — kind of [e] under variable kinds [env]. *)
val infer : Ast.spec -> (string * kind) list -> Expr.t -> kind

(** Kind of a declared type. *)
val kind_of_ty : Ty.t -> kind

val pp_kind : Format.formatter -> kind -> unit
