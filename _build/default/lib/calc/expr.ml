type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Const of Value.t
  | Var of string
  | Unop of [ `Neg | `Not ] * t
  | Binop of binop * t * t
  | If of t * t * t

exception Eval_error of string

let fail msg = raise (Eval_error msg)

let as_int = function
  | Value.VInt n -> n
  | v -> fail ("expected integer, got " ^ Value.to_string v)

let as_bool = function
  | Value.VBool b -> b
  | v -> fail ("expected boolean, got " ^ Value.to_string v)

let rec eval = function
  | Const v -> v
  | Var x -> fail ("unbound variable " ^ x)
  | Unop (`Neg, e) -> Value.VInt (-as_int (eval e))
  | Unop (`Not, e) -> Value.VBool (not (as_bool (eval e)))
  | If (c, t, e) -> if as_bool (eval c) then eval t else eval e
  | Binop (op, a, b) -> (
      match op with
      | Add -> Value.VInt (as_int (eval a) + as_int (eval b))
      | Sub -> Value.VInt (as_int (eval a) - as_int (eval b))
      | Mul -> Value.VInt (as_int (eval a) * as_int (eval b))
      | Div ->
        let d = as_int (eval b) in
        if d = 0 then fail "division by zero";
        Value.VInt (as_int (eval a) / d)
      | Mod ->
        let d = as_int (eval b) in
        if d = 0 then fail "modulo by zero";
        Value.VInt (as_int (eval a) mod d)
      | Lt -> Value.VBool (as_int (eval a) < as_int (eval b))
      | Le -> Value.VBool (as_int (eval a) <= as_int (eval b))
      | Gt -> Value.VBool (as_int (eval a) > as_int (eval b))
      | Ge -> Value.VBool (as_int (eval a) >= as_int (eval b))
      | Eq -> Value.VBool (Value.equal (eval a) (eval b))
      | Ne -> Value.VBool (not (Value.equal (eval a) (eval b)))
      | And -> Value.VBool (as_bool (eval a) && as_bool (eval b))
      | Or -> Value.VBool (as_bool (eval a) || as_bool (eval b)))

let eval_bool e = as_bool (eval e)

let rec free_vars_acc acc = function
  | Const _ -> acc
  | Var x -> if List.mem x acc then acc else x :: acc
  | Unop (_, e) -> free_vars_acc acc e
  | Binop (_, a, b) -> free_vars_acc (free_vars_acc acc a) b
  | If (c, t, e) -> free_vars_acc (free_vars_acc (free_vars_acc acc c) t) e

let free_vars e = List.rev (free_vars_acc [] e)

let rec subst bindings e =
  match e with
  | Const _ -> e
  | Var x -> (
      match List.assoc_opt x bindings with
      | Some v -> Const v
      | None -> e)
  | Unop (op, inner) -> Unop (op, subst bindings inner)
  | Binop (op, a, b) -> Binop (op, subst bindings a, subst bindings b)
  | If (c, t, els) -> If (subst bindings c, subst bindings t, subst bindings els)

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Var x -> Format.pp_print_string fmt x
  | Unop (`Neg, e) -> Format.fprintf fmt "(- %a)" pp e
  | Unop (`Not, e) -> Format.fprintf fmt "(not %a)" pp e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (binop_symbol op) pp b
  | If (c, t, e) -> Format.fprintf fmt "(if %a then %a else %a)" pp c pp t pp e
