(** Data expressions over {!Value}.

    Enum constructors appear as [Const (VEnum c)] after resolution; the
    parser emits [Var] for every identifier and {!Typecheck} resolves
    identifiers that name enum constructors. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Const of Value.t
  | Var of string
  | Unop of [ `Neg | `Not ] * t
  | Binop of binop * t * t
  | If of t * t * t

exception Eval_error of string

(** [eval e] evaluates a closed expression. Raises {!Eval_error} on
    free variables, type mismatches, division by zero. *)
val eval : t -> Value.t

(** [eval_bool e] — evaluates and requires a boolean. *)
val eval_bool : t -> bool

(** Free variables, without duplicates. *)
val free_vars : t -> string list

(** [subst bindings e] replaces free variables by constants. *)
val subst : (string * Value.t) list -> t -> t

val pp : Format.formatter -> t -> unit
