module Lts = Mv_lts.Lts
module Bitset = Mv_util.Bitset

(* Internal representation: one boolean variable per (subformula,
   state); variable ids are [sub * nb_states + state]. Every equation
   is a pure conjunction or disjunction over variables and constants
   (constants are folded during construction). *)

type rhs =
  | Const of bool
  | Disj of int list
  | Conj of int list

type t = {
  lts : Lts.t;
  nb_subs : int;
  rhs : rhs array; (* per variable *)
  block : int array; (* per subformula *)
  sign : bool array; (* per block: true = nu (greatest), false = mu *)
  nb_blocks : int;
}

type stats = { variables : int; blocks : int }

let stats t =
  { variables = Array.length t.rhs; blocks = t.nb_blocks }

(* Fold constants into a disjunction/conjunction. *)
let disj operands =
  if List.exists (fun o -> o = None) operands then Const true
  else
    match List.filter_map Fun.id operands with
    | [] -> Const false
    | vs -> Disj vs

let conj operands =
  if List.exists (fun o -> o = None) operands then Const false
  else
    match List.filter_map Fun.id operands with
    | [] -> Const true
    | vs -> Conj vs

let rec translate lts formula =
  Formula.check formula;
  let n = Lts.nb_states lts in
  (* number the subformulas (closed [Not]/[Implies] arguments are
     solved recursively and enter as constants) *)
  let subs : (Formula.t * int) list ref = ref [] in
  let nb_subs = ref 0 in
  let block_of_sub : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_block = ref 0 in
  let binders : (string * int) list ref = ref [] in
  (* assign ids depth-first; [block] is the enclosing block id,
     [sign] its polarity (true = nu) *)
  let rec number (f : Formula.t) ~block ~sign =
    let id = !nb_subs in
    incr nb_subs;
    subs := (f, id) :: !subs;
    Hashtbl.replace block_of_sub id block;
    (match f with
     | Formula.True | Formula.False | Formula.Var _ | Formula.Not _ -> ()
     | Formula.Implies (_, b) -> number b ~block ~sign
     | Formula.And (a, b) | Formula.Or (a, b) ->
       number a ~block ~sign;
       number b ~block ~sign
     | Formula.Diamond (_, inner) | Formula.Box (_, inner) ->
       number inner ~block ~sign
     | Formula.Mu (x, inner) ->
       let inner_block =
         if sign = false then block
         else begin
           incr next_block;
           !next_block
         end
       in
       Hashtbl.replace block_of_sub id inner_block;
       binders := (x, id) :: !binders;
       number inner ~block:inner_block ~sign:false;
       binders := List.tl !binders
     | Formula.Nu (x, inner) ->
       let inner_block =
         if sign = true then block
         else begin
           incr next_block;
           !next_block
         end
       in
       Hashtbl.replace block_of_sub id inner_block;
       binders := (x, id) :: !binders;
       number inner ~block:inner_block ~sign:true;
       binders := List.tl !binders);
    ignore id
  in
  (* the binder environment is only correct during the traversal, so
     record, for Var nodes, the id of their binder as we go *)
  let var_binder : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec record_vars (f : Formula.t) id_counter =
    (* re-walk in the same order as [number] to attach binder ids *)
    let id = !id_counter in
    incr id_counter;
    match f with
    | Formula.True | Formula.False | Formula.Not _ -> ()
    | Formula.Var x ->
      (match List.assoc_opt x !binders with
       | Some binder -> Hashtbl.replace var_binder id binder
       | None -> assert false)
    | Formula.Implies (_, b) -> record_vars b id_counter
    | Formula.And (a, b) | Formula.Or (a, b) ->
      record_vars a id_counter;
      record_vars b id_counter
    | Formula.Diamond (_, inner) | Formula.Box (_, inner) ->
      record_vars inner id_counter
    | Formula.Mu (x, inner) | Formula.Nu (x, inner) ->
      binders := (x, id) :: !binders;
      record_vars inner id_counter;
      binders := List.tl !binders
  in
  number formula ~block:0 ~sign:true;
  binders := [];
  record_vars formula (ref 0);
  let nb_subs = !nb_subs in
  let sub_formula = Array.make nb_subs Formula.True in
  List.iter (fun (f, id) -> sub_formula.(id) <- f) !subs;
  let block = Array.init nb_subs (fun id -> Hashtbl.find block_of_sub id) in
  let nb_blocks = !next_block + 1 in
  (* block polarity: any fixpoint subformula fixes it; default nu *)
  let sign = Array.make nb_blocks true in
  Array.iteri
    (fun id f ->
       match (f : Formula.t) with
       | Formula.Mu _ -> sign.(block.(id)) <- false
       | Formula.Nu _ -> sign.(block.(id)) <- true
       | _ -> ())
    sub_formula;
  (* equations; closed negative subformulas are solved recursively *)
  let var sub state = (sub * n) + state in
  let rhs = Array.make (nb_subs * n) (Const false) in
  let compiled = Hashtbl.create 8 in
  let action_set alpha =
    match Hashtbl.find_opt compiled alpha with
    | Some set -> set
    | None ->
      let set = Action_formula.compile lts alpha in
      Hashtbl.replace compiled alpha set;
      set
  in
  let rec solve_closed f =
    (* a fresh, independent system for the closed argument *)
    solve (translate_checked lts f)
  and fill id =
    let next_id = ref (id + 1) in
    let child () =
      let c = !next_id in
      (* advance past the whole subtree rooted at c *)
      let rec size (f : Formula.t) =
        1
        +
        match f with
        | Formula.True | Formula.False | Formula.Var _ | Formula.Not _ -> 0
        | Formula.Implies (_, b) -> size b
        | Formula.And (a, b) | Formula.Or (a, b) -> size a + size b
        | Formula.Diamond (_, i) | Formula.Box (_, i) -> size i
        | Formula.Mu (_, i) | Formula.Nu (_, i) -> size i
      in
      next_id := !next_id + size sub_formula.(c);
      c
    in
    (match sub_formula.(id) with
     | Formula.True ->
       for s = 0 to n - 1 do rhs.(var id s) <- Const true done
     | Formula.False ->
       for s = 0 to n - 1 do rhs.(var id s) <- Const false done
     | Formula.Not inner ->
       let set = solve_closed inner in
       for s = 0 to n - 1 do
         rhs.(var id s) <- Const (not (Bitset.mem set s))
       done
     | Formula.Implies (a, _b) ->
       let left = solve_closed a in
       let cb = child () in
       fill cb;
       for s = 0 to n - 1 do
         rhs.(var id s) <-
           (if Bitset.mem left s then Disj [ var cb s ] else Const true)
       done
     | Formula.And (_, _) ->
       let ca = child () in
       fill ca;
       let cb = child () in
       fill cb;
       for s = 0 to n - 1 do
         rhs.(var id s) <- Conj [ var ca s; var cb s ]
       done
     | Formula.Or (_, _) ->
       let ca = child () in
       fill ca;
       let cb = child () in
       fill cb;
       for s = 0 to n - 1 do
         rhs.(var id s) <- Disj [ var ca s; var cb s ]
       done
     | Formula.Diamond (alpha, _) ->
       let ci = child () in
       fill ci;
       let set = action_set alpha in
       for s = 0 to n - 1 do
         let succs =
           Lts.fold_out lts s
             (fun label dst acc ->
                if Bitset.mem set label then Some (var ci dst) :: acc else acc)
             []
         in
         rhs.(var id s) <- disj succs
       done
     | Formula.Box (alpha, _) ->
       let ci = child () in
       fill ci;
       let set = action_set alpha in
       for s = 0 to n - 1 do
         let succs =
           Lts.fold_out lts s
             (fun label dst acc ->
                if Bitset.mem set label then Some (var ci dst) :: acc else acc)
             []
         in
         rhs.(var id s) <- conj succs
       done
     | Formula.Mu (_, _) | Formula.Nu (_, _) ->
       let ci = child () in
       fill ci;
       for s = 0 to n - 1 do
         rhs.(var id s) <- Disj [ var ci s ]
       done
     | Formula.Var _ ->
       let binder = Hashtbl.find var_binder id in
       for s = 0 to n - 1 do
         rhs.(var id s) <- Disj [ var binder s ]
       done)
  and translate_checked lts f =
    (* recursion entry for closed arguments *)
    translate lts f
  in
  fill 0;
  { lts; nb_subs; rhs; block; sign; nb_blocks }

and solve t =
  let n = Lts.nb_states t.lts in
  let nb_vars = Array.length t.rhs in
  let block_of_var v = t.block.(v / n) in
  let value = Array.make nb_vars false in
  (* reverse dependencies, restricted to same-block edges (deeper
     blocks are solved before they are read) *)
  let dependents = Array.make nb_vars [] in
  Array.iteri
    (fun v r ->
       let record operands =
         List.iter
           (fun w ->
              if block_of_var w = block_of_var v then
                dependents.(w) <- v :: dependents.(w))
           operands
       in
       match r with Const _ -> () | Disj ops | Conj ops -> record ops)
    t.rhs;
  (* solve blocks innermost-first (DFS numbering: children deeper) *)
  for b = t.nb_blocks - 1 downto 0 do
    let nu = t.sign.(b) in
    let members = ref [] in
    for v = nb_vars - 1 downto 0 do
      if block_of_var v = b then members := v :: !members
    done;
    (* literal value of an operand as seen from this block: in-block
       operands are tracked by counters; others are already final *)
    let external_value w = value.(w) in
    let in_block w = block_of_var w = b in
    if nu then begin
      (* greatest model: start true, propagate falsity *)
      let counter = Array.make nb_vars 0 in
      let queue = Queue.create () in
      List.iter (fun v -> value.(v) <- true) !members;
      List.iter
        (fun v ->
           match t.rhs.(v) with
           | Const c -> if not c then Queue.add v queue
           | Disj ops ->
             (* false when every operand is false *)
             let pending =
               List.length (List.filter in_block ops)
             in
             let external_true =
               List.exists (fun w -> (not (in_block w)) && external_value w) ops
             in
             if external_true then counter.(v) <- -1 (* permanently true *)
             else begin
               counter.(v) <- pending;
               if pending = 0 then Queue.add v queue
             end
           | Conj ops ->
             let external_false =
               List.exists
                 (fun w -> (not (in_block w)) && not (external_value w))
                 ops
             in
             if external_false then Queue.add v queue)
        !members;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        if value.(v) then begin
          value.(v) <- false;
          List.iter
            (fun w ->
               if value.(w) then
                 match t.rhs.(w) with
                 | Conj _ -> Queue.add w queue
                 | Disj _ ->
                   if counter.(w) > 0 then begin
                     counter.(w) <- counter.(w) - 1;
                     if counter.(w) = 0 then Queue.add w queue
                   end
                 | Const _ -> ())
            dependents.(v)
        end
      done
    end
    else begin
      (* least model: start false, propagate truth *)
      let counter = Array.make nb_vars 0 in
      let queue = Queue.create () in
      List.iter
        (fun v ->
           match t.rhs.(v) with
           | Const c -> if c then Queue.add v queue
           | Conj ops ->
             let pending = List.length (List.filter in_block ops) in
             let external_false =
               List.exists
                 (fun w -> (not (in_block w)) && not (external_value w))
                 ops
             in
             if external_false then counter.(v) <- -1 (* permanently false *)
             else begin
               counter.(v) <- pending;
               if pending = 0 then Queue.add v queue
             end
           | Disj ops ->
             let external_true =
               List.exists (fun w -> (not (in_block w)) && external_value w) ops
             in
             if external_true then Queue.add v queue)
        !members;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        if not value.(v) then begin
          value.(v) <- true;
          List.iter
            (fun w ->
               if not value.(w) then
                 match t.rhs.(w) with
                 | Disj _ -> Queue.add w queue
                 | Conj _ ->
                   if counter.(w) > 0 then begin
                     counter.(w) <- counter.(w) - 1;
                     if counter.(w) = 0 then Queue.add w queue
                   end
                 | Const _ -> ())
            dependents.(v)
        end
      done
    end
  done;
  let result = Bitset.create n in
  for s = 0 to n - 1 do
    if value.(s) then Bitset.add result s (* variables of subformula 0 *)
  done;
  result

let holds lts formula =
  Bitset.mem (solve (translate lts formula)) (Lts.initial lts)

let sat lts formula = solve (translate lts formula)
