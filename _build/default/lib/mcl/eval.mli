(** Global fixpoint evaluation of alternation-free formulas over an
    explicit LTS.

    Straightforward Knaster-Tarski iteration on dense bitsets; nested
    fixpoints are re-evaluated under each environment, which is
    quadratic in the worst case but entirely adequate for the
    alternation-free formulas and model sizes of this flow. *)

(** [sat lts formula] is the set of states satisfying [formula].
    Raises {!Formula.Ill_formed} when [formula] violates the
    restrictions of {!Formula.check}. *)
val sat : Mv_lts.Lts.t -> Formula.t -> Mv_util.Bitset.t

(** [holds lts formula] — does the initial state satisfy it? *)
val holds : Mv_lts.Lts.t -> Formula.t -> bool

(** [witnesses lts formula ~limit] lists up to [limit] satisfying
    states (diagnostic helper). *)
val witnesses : Mv_lts.Lts.t -> Formula.t -> limit:int -> int list
