lib/mcl/formula.ml: Action_formula Format List Printf Set String
