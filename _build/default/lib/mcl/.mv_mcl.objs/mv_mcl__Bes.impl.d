lib/mcl/bes.ml: Action_formula Array Formula Fun Hashtbl List Mv_lts Mv_util Queue
