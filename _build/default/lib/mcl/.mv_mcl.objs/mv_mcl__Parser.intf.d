lib/mcl/parser.mli: Action_formula Formula
