lib/mcl/eval.ml: Action_formula Formula Hashtbl List Mv_lts Mv_util
