lib/mcl/action_formula.mli: Format Mv_lts Mv_util
