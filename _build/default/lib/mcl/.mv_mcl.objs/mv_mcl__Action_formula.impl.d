lib/mcl/action_formula.ml: Format Mv_lts Mv_util
