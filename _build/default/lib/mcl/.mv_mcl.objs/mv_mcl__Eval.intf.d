lib/mcl/eval.mli: Formula Mv_lts Mv_util
