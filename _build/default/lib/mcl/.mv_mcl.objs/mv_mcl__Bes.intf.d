lib/mcl/bes.mli: Formula Mv_lts Mv_util
