lib/mcl/formula.mli: Action_formula Format
