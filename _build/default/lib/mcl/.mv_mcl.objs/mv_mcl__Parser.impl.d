lib/mcl/parser.ml: Action_formula Formula List Mv_util Printf
