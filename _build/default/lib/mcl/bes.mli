(** Boolean equation systems — the resolution engine behind CADP's
    EVALUATOR (and behind the performance/dependability components of
    the paper's reference \[4\], Hermanns-Joubert TACAS 2003).

    An alternation-free mu-calculus query [(lts, formula)] translates
    into a BES with one variable per (subformula, state) pair, grouped
    into blocks by fixpoint sign; blocks only depend on deeper blocks,
    so the system is solved innermost-first, each block by the standard
    linear-time counter-based propagation (Andersen's algorithm:
    mu-blocks grow a least model from false, nu-blocks shrink a
    greatest model from true).

    This is a second, independently-implemented model checker: the
    tests cross-validate it against the direct fixpoint evaluator
    {!Eval} on random formulas and systems. *)

type t

(** Statistics of a translated system. *)
type stats = {
  variables : int;
  blocks : int;
}

(** [translate lts formula] builds the BES for "[formula] holds of
    each state". Raises {!Formula.Ill_formed} on formulas outside the
    alternation-free fragment. *)
val translate : Mv_lts.Lts.t -> Formula.t -> t

val stats : t -> stats

(** [solve bes] — the satisfying state set of the root formula. *)
val solve : t -> Mv_util.Bitset.t

(** [holds lts formula] — translate and solve, then look up the
    initial state. *)
val holds : Mv_lts.Lts.t -> Formula.t -> bool

(** [sat lts formula] = [solve (translate lts formula)]. *)
val sat : Mv_lts.Lts.t -> Formula.t -> Mv_util.Bitset.t
