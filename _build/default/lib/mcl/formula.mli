(** State formulas: alternation-free modal mu-calculus.

    Restrictions enforced by {!check}:
    - [Not] may only be applied to closed subformulas (otherwise
      fixpoints would lose monotonicity);
    - no fixpoint variable may appear under a fixpoint of the opposite
      sign nested inside its binder (alternation freedom);
    - every variable must be bound.

    The {!Macro} sub-module provides the CTL-style patterns used by the
    verification flow. *)

type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Diamond of Action_formula.t * t (** possibility: some move *)
  | Box of Action_formula.t * t (** necessity: all moves *)
  | Mu of string * t (** least fixpoint *)
  | Nu of string * t (** greatest fixpoint *)
  | Var of string

(** Raised by {!check} with a human-readable explanation. *)
exception Ill_formed of string

(** Regular formulas over actions (the PDL-style modalities of CADP's
    MCL): [<R> phi] — some [R]-path leads to a [phi]-state; [\[R\] phi]
    — all [R]-paths do. Desugared into plain fixpoint formulas, so
    [\[true* . error\] false] is the usual safety idiom. Diamond
    desugars stars to least fixpoints and box to greatest, so a formula
    using only one polarity of regular modality stays
    alternation-free. *)
module Regex : sig
  type formula := t

  type t =
    | Act of Action_formula.t (** one action *)
    | Seq of t * t (** concatenation *)
    | Alt of t * t (** union *)
    | Star of t (** zero or more repetitions *)

  (** [diamond r phi] = [<r> phi]. *)
  val diamond : t -> formula -> formula

  (** [box r phi] = [\[r\] phi]. *)
  val box : t -> formula -> formula
end

(** Validate the restrictions above. *)
val check : t -> unit

val pp : Format.formatter -> t -> unit

(** Common property patterns. *)
module Macro : sig
  (** Some transition is always possible (no reachable deadlock):
      [nu X . <any> true and \[any\] X]. *)
  val deadlock_free : t

  (** [always phi] — AG: [phi] holds on every reachable state. *)
  val always : t -> t

  (** [possibly phi] — EF: some path reaches a [phi]-state. *)
  val possibly : t -> t

  (** [inevitably phi] — AF on finite paths: every maximal path reaches
      a [phi]-state (requires freedom from invisible divergence to be
      meaningful; evaluated literally as
      [mu X . phi or (<any> true and \[any\] X)]). *)
  val inevitably : t -> t

  (** [can_do alpha] — an [alpha]-move is enabled. *)
  val can_do : Action_formula.t -> t

  (** [never alpha] — no reachable state enables [alpha]. *)
  val never : Action_formula.t -> t

  (** [inevitably_action alpha] — on every maximal path an [alpha]
      eventually occurs: [mu X . <any> true and \[not alpha\] X]. *)
  val inevitably_action : Action_formula.t -> t

  (** [response ~trigger ~reaction] — after every [trigger], a
      [reaction] is inevitable. *)
  val response : trigger:Action_formula.t -> reaction:Action_formula.t -> t
end
