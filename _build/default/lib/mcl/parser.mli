(** Concrete syntax for state formulas.

    {v
    form ::= form "=>" form            (right associative, lowest)
           | form "or" form | form "and" form
           | "not" form
           | "<" reg ">" form | "[" reg "]" form
           | "mu" VAR "." form | "nu" VAR "." form
           | "true" | "false" | "deadlock_free" | VAR | "(" form ")"
    reg  ::= reg "|" reg               (union)
           | reg "." reg               (sequence)
           | reg "*"                   (iteration)
           | atom | "(" reg ")"
    atom ::= "true" | "any" | "false" | "tau" | "visible"
           | IDENT             (gate match, e.g. PUSH)
           | STRING            (exact label, e.g. "PUSH !3")
           | "not" atom        (boolean negation; group with not (...))
    act  ::= act "or" act | act "and" act | "not" act
           | atoms as above | "(" act ")"
    v}

    Modalities contain {e regular formulas}: [\[true* . error\] false]
    is the safety idiom "no error ever". Single-action modalities are
    the special case of a one-atom regex. [action_of_string] parses the
    full boolean action grammar ([act]).

    Comments are OCaml-style [(* ... *)]. *)

exception Parse_error of string

val formula_of_string : string -> Formula.t

val action_of_string : string -> Action_formula.t
