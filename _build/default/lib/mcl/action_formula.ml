module Label = Mv_lts.Label
module Lts = Mv_lts.Lts
module Bitset = Mv_util.Bitset

type t =
  | Any
  | None_
  | Tau
  | Visible
  | Name of string
  | Gate of string
  | Not of t
  | And of t * t
  | Or of t * t

let rec matches labels formula label_id =
  match formula with
  | Any -> true
  | None_ -> false
  | Tau -> label_id = Label.tau
  | Visible -> label_id <> Label.tau
  | Name n -> Label.name labels label_id = n
  | Gate g -> Label.gate (Label.name labels label_id) = g
  | Not f -> not (matches labels f label_id)
  | And (a, b) -> matches labels a label_id && matches labels b label_id
  | Or (a, b) -> matches labels a label_id || matches labels b label_id

let compile lts formula =
  let labels = Lts.labels lts in
  let set = Bitset.create (Label.count labels) in
  for l = 0 to Label.count labels - 1 do
    if matches labels formula l then Bitset.add set l
  done;
  set

let rec pp fmt = function
  | Any -> Format.pp_print_string fmt "true"
  | None_ -> Format.pp_print_string fmt "false"
  | Tau -> Format.pp_print_string fmt "tau"
  | Visible -> Format.pp_print_string fmt "visible"
  | Name n -> Format.fprintf fmt "%S" n
  | Gate g -> Format.pp_print_string fmt g
  | Not f -> Format.fprintf fmt "(not %a)" pp f
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
