module Lts = Mv_lts.Lts
module Bitset = Mv_util.Bitset

(* The modalities iterate over all transitions once per call; the
   per-formula compiled action sets make the label test O(1). *)

let diamond lts action_set target =
  let n = Lts.nb_states lts in
  let result = Bitset.create n in
  Lts.iter_transitions lts (fun src label dst ->
      if Bitset.mem action_set label && Bitset.mem target dst then
        Bitset.add result src);
  result

let box lts action_set target =
  (* s satisfies [alpha]phi iff no alpha-move leaves phi *)
  let n = Lts.nb_states lts in
  let violating = Bitset.create n in
  Lts.iter_transitions lts (fun src label dst ->
      if Bitset.mem action_set label && not (Bitset.mem target dst) then
        Bitset.add violating src);
  Bitset.complement violating;
  violating

let sat lts formula =
  Formula.check formula;
  let n = Lts.nb_states lts in
  let compiled = Hashtbl.create 16 in
  let action_set alpha =
    match Hashtbl.find_opt compiled alpha with
    | Some set -> set
    | None ->
      let set = Action_formula.compile lts alpha in
      Hashtbl.replace compiled alpha set;
      set
  in
  let rec eval env formula =
    match formula with
    | Formula.True -> Bitset.full n
    | Formula.False -> Bitset.create n
    | Formula.Var x -> (
        match List.assoc_opt x env with
        | Some set -> Bitset.copy set
        | None -> assert false (* ruled out by Formula.check *))
    | Formula.Not inner ->
      let set = eval env inner in
      Bitset.complement set;
      set
    | Formula.And (a, b) ->
      let sa = eval env a in
      Bitset.inter_into ~into:sa (eval env b);
      sa
    | Formula.Or (a, b) ->
      let sa = eval env a in
      Bitset.union_into ~into:sa (eval env b);
      sa
    | Formula.Implies (a, b) ->
      let sa = eval env a in
      Bitset.complement sa;
      Bitset.union_into ~into:sa (eval env b);
      sa
    | Formula.Diamond (alpha, inner) ->
      diamond lts (action_set alpha) (eval env inner)
    | Formula.Box (alpha, inner) -> box lts (action_set alpha) (eval env inner)
    | Formula.Mu (x, inner) -> fixpoint env x inner (Bitset.create n)
    | Formula.Nu (x, inner) -> fixpoint env x inner (Bitset.full n)
  and fixpoint env x inner start =
    let current = ref start in
    let stable = ref false in
    while not !stable do
      let next = eval ((x, !current) :: env) inner in
      if Bitset.equal next !current then stable := true else current := next
    done;
    !current
  in
  eval [] formula

let holds lts formula = Bitset.mem (sat lts formula) (Lts.initial lts)

let witnesses lts formula ~limit =
  let set = sat lts formula in
  let out = ref [] in
  let count = ref 0 in
  (try
     Bitset.iter
       (fun s ->
          if !count >= limit then raise Exit;
          incr count;
          out := s :: !out)
       set
   with Exit -> ());
  List.rev !out
