module Lex = Mv_util.Lexing_util

exception Parse_error of string

let symbols = [ "=>"; "<"; ">"; "["; "]"; "("; ")"; "."; "|"; "*" ]

let rec parse_action_or lex =
  let left = parse_action_and lex in
  match Lex.peek lex with
  | Lex.Ident "or" ->
    ignore (Lex.next lex);
    Action_formula.Or (left, parse_action_or lex)
  | _ -> left

and parse_action_and lex =
  let left = parse_action_atom lex in
  match Lex.peek lex with
  | Lex.Ident "and" ->
    ignore (Lex.next lex);
    Action_formula.And (left, parse_action_and lex)
  | _ -> left

and parse_action_atom lex =
  match Lex.next lex with
  | Lex.Ident "not" -> Action_formula.Not (parse_action_atom lex)
  | Lex.Ident "true" | Lex.Ident "any" -> Action_formula.Any
  | Lex.Ident "false" -> Action_formula.None_
  | Lex.Ident "tau" -> Action_formula.Tau
  | Lex.Ident "visible" -> Action_formula.Visible
  | Lex.Ident gate -> Action_formula.Gate gate
  | Lex.Str label -> Action_formula.Name label
  | Lex.Punct "(" ->
    let inner = parse_action_or lex in
    Lex.expect lex ")";
    inner
  | tok ->
    Lex.error lex
      (Printf.sprintf "unexpected token in action formula: %s"
         (match tok with
          | Lex.Punct p -> Printf.sprintf "%S" p
          | Lex.Int n -> string_of_int n
          | Lex.Float f -> string_of_float f
          | Lex.Eof -> "end of input"
          | Lex.Ident _ | Lex.Str _ -> assert false))

let keywords = [ "true"; "false"; "not"; "and"; "or"; "mu"; "nu"; "deadlock_free" ]

(* Regular formulas inside modalities: alternation < sequence < star.
   Atoms are action formulas; a parenthesis at regex level groups a
   regex (use [not (...)] for boolean grouping over actions). *)
let rec parse_regex lex = parse_regex_alt lex

and parse_regex_alt lex =
  let left = parse_regex_seq lex in
  if Lex.eat lex "|" then Formula.Regex.Alt (left, parse_regex_alt lex)
  else left

and parse_regex_seq lex =
  let left = parse_regex_star lex in
  if Lex.eat lex "." then Formula.Regex.Seq (left, parse_regex_seq lex)
  else left

and parse_regex_star lex =
  let rec stars r = if Lex.eat lex "*" then stars (Formula.Regex.Star r) else r in
  stars (parse_regex_atom lex)

and parse_regex_atom lex =
  match Lex.peek lex with
  | Lex.Punct "(" ->
    ignore (Lex.next lex);
    let r = parse_regex lex in
    Lex.expect lex ")";
    r
  | _ -> Formula.Regex.Act (parse_action_atom lex)

let rec parse_implies lex =
  let left = parse_or lex in
  if Lex.eat lex "=>" then Formula.Implies (left, parse_implies lex) else left

and parse_or lex =
  let left = parse_and lex in
  match Lex.peek lex with
  | Lex.Ident "or" ->
    ignore (Lex.next lex);
    Formula.Or (left, parse_or lex)
  | _ -> left

and parse_and lex =
  let left = parse_unary lex in
  match Lex.peek lex with
  | Lex.Ident "and" ->
    ignore (Lex.next lex);
    Formula.And (left, parse_and lex)
  | _ -> left

and parse_unary lex =
  match Lex.peek lex with
  | Lex.Ident "not" ->
    ignore (Lex.next lex);
    Formula.Not (parse_unary lex)
  | Lex.Punct "<" ->
    ignore (Lex.next lex);
    let r = parse_regex lex in
    Lex.expect lex ">";
    Formula.Regex.diamond r (parse_unary lex)
  | Lex.Punct "[" ->
    ignore (Lex.next lex);
    let r = parse_regex lex in
    Lex.expect lex "]";
    Formula.Regex.box r (parse_unary lex)
  | Lex.Ident "mu" ->
    ignore (Lex.next lex);
    let x = Lex.expect_ident lex in
    Lex.expect lex ".";
    Formula.Mu (x, parse_implies lex)
  | Lex.Ident "nu" ->
    ignore (Lex.next lex);
    let x = Lex.expect_ident lex in
    Lex.expect lex ".";
    Formula.Nu (x, parse_implies lex)
  | _ -> parse_atom lex

and parse_atom lex =
  match Lex.next lex with
  | Lex.Ident "true" -> Formula.True
  | Lex.Ident "false" -> Formula.False
  | Lex.Ident "deadlock_free" -> Formula.Macro.deadlock_free
  | Lex.Ident x when not (List.mem x keywords) -> Formula.Var x
  | Lex.Punct "(" ->
    let inner = parse_implies lex in
    Lex.expect lex ")";
    inner
  | tok ->
    Lex.error lex
      (Printf.sprintf "unexpected token in formula: %s"
         (match tok with
          | Lex.Ident i -> i
          | Lex.Punct p -> Printf.sprintf "%S" p
          | Lex.Int n -> string_of_int n
          | Lex.Float f -> string_of_float f
          | Lex.Str s -> Printf.sprintf "%S" s
          | Lex.Eof -> "end of input"))

let run parse text =
  try
    let lex = Lex.make ~symbols text in
    let result = parse lex in
    (match Lex.peek lex with
     | Lex.Eof -> ()
     | _ -> Lex.error lex "trailing input after formula");
    result
  with Lex.Lex_error msg -> raise (Parse_error msg)

let formula_of_string text =
  let f = run parse_implies text in
  Formula.check f;
  f

let action_of_string text = run parse_action_or text
