(** Predicates over transition labels (the [alpha] in [<alpha>] and
    [\[alpha\]] modalities).

    Atoms match either a full printed label, a gate (the prefix before
    the first space, so [Gate "PUSH"] matches ["PUSH !3"]), or tau. *)

type t =
  | Any (** every action, tau included *)
  | None_ (** no action *)
  | Tau
  | Visible (** every action except tau *)
  | Name of string (** exact printed label *)
  | Gate of string (** label gate equality *)
  | Not of t
  | And of t * t
  | Or of t * t

(** [matches labels formula label_id] — does label [label_id] of table
    [labels] satisfy [formula]? *)
val matches : Mv_lts.Label.table -> t -> int -> bool

(** [compile lts formula] precomputes the satisfying label set of the
    LTS's table, for repeated use during fixpoint evaluation. *)
val compile : Mv_lts.Lts.t -> t -> Mv_util.Bitset.t

val pp : Format.formatter -> t -> unit
