type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Diamond of Action_formula.t * t
  | Box of Action_formula.t * t
  | Mu of string * t
  | Nu of string * t
  | Var of string

exception Ill_formed of string

let fail msg = raise (Ill_formed msg)

module StringSet = Set.Make (String)

let rec free_vars = function
  | True | False -> StringSet.empty
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
    StringSet.union (free_vars a) (free_vars b)
  | Diamond (_, f) | Box (_, f) -> free_vars f
  | Mu (x, f) | Nu (x, f) -> StringSet.remove x (free_vars f)
  | Var x -> StringSet.singleton x

(* [check_alternation bound f]: [bound] maps each in-scope variable to
   the sign of its binder; crossing a fixpoint of the opposite sign
   while a variable is still free underneath violates alternation
   freedom. *)
let check f =
  let rec walk bound formula =
    match formula with
    | True | False -> ()
    | Var x ->
      if not (List.mem_assoc x bound) then fail ("unbound variable " ^ x)
    | Not inner ->
      if not (StringSet.is_empty (free_vars inner)) then
        fail "negation applied to a formula with free fixpoint variables";
      walk bound inner
    | Implies (a, b) ->
      if not (StringSet.is_empty (free_vars a)) then
        fail "left side of => has free fixpoint variables";
      walk bound a;
      walk bound b
    | And (a, b) | Or (a, b) -> walk bound a; walk bound b
    | Diamond (_, inner) | Box (_, inner) -> walk bound inner
    | Mu (x, inner) | Nu (x, inner) ->
      let sign = match formula with Mu _ -> `Mu | _ -> `Nu in
      let crossed = free_vars inner |> StringSet.remove x in
      StringSet.iter
        (fun y ->
           match List.assoc_opt y bound with
           | Some s when s <> sign ->
             fail
               (Printf.sprintf
                  "variable %s crosses a fixpoint of the opposite sign \
                   (alternation is not supported)"
                  y)
           | Some _ | None -> ())
        crossed;
      walk ((x, sign) :: bound) inner
  in
  walk [] f

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Not f -> Format.fprintf fmt "(not %a)" pp f
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf fmt "(%a => %a)" pp a pp b
  | Diamond (alpha, f) -> Format.fprintf fmt "<%a> %a" Action_formula.pp alpha pp f
  | Box (alpha, f) -> Format.fprintf fmt "[%a] %a" Action_formula.pp alpha pp f
  | Mu (x, f) -> Format.fprintf fmt "(mu %s . %a)" x pp f
  | Nu (x, f) -> Format.fprintf fmt "(nu %s . %a)" x pp f
  | Var x -> Format.pp_print_string fmt x

module Regex = struct
  type t =
    | Act of Action_formula.t
    | Seq of t * t
    | Alt of t * t
    | Star of t

  (* fresh fixpoint variables for star expansions; '%' keeps them out
     of the identifier namespace of parsed formulas *)
  let counter = ref 0

  let fresh () =
    incr counter;
    Printf.sprintf "%%R%d" !counter

  let rec diamond r phi =
    match r with
    | Act alpha -> Diamond (alpha, phi)
    | Seq (a, b) -> diamond a (diamond b phi)
    | Alt (a, b) -> Or (diamond a phi, diamond b phi)
    | Star inner ->
      let x = fresh () in
      Mu (x, Or (phi, diamond inner (Var x)))

  let rec box r phi =
    match r with
    | Act alpha -> Box (alpha, phi)
    | Seq (a, b) -> box a (box b phi)
    | Alt (a, b) -> And (box a phi, box b phi)
    | Star inner ->
      let x = fresh () in
      Nu (x, And (phi, box inner (Var x)))
end

module Macro = struct
  let deadlock_free =
    Nu ("DLF", And (Diamond (Action_formula.Any, True), Box (Action_formula.Any, Var "DLF")))

  let always phi = Nu ("AG", And (phi, Box (Action_formula.Any, Var "AG")))

  let possibly phi = Mu ("EF", Or (phi, Diamond (Action_formula.Any, Var "EF")))

  let inevitably phi =
    Mu
      ( "AF",
        Or (phi, And (Diamond (Action_formula.Any, True), Box (Action_formula.Any, Var "AF"))) )

  let can_do alpha = Diamond (alpha, True)
  let never alpha = always (Box (alpha, False))

  let inevitably_action alpha =
    Mu
      ( "AFA",
        And
          ( Diamond (Action_formula.Any, True),
            Box (Action_formula.Not alpha, Var "AFA") ) )

  let response ~trigger ~reaction =
    always (Box (trigger, inevitably_action reaction))
end
