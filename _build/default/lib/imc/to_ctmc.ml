module Label = Mv_lts.Label
module Ctmc = Mv_markov.Ctmc

type scheduler =
  | Fail
  | Uniform
  | Deterministic of (int -> int)

type result = {
  ctmc : Ctmc.t;
  ctmc_state_of_imc : int array;
  imc_state_of_ctmc : int array;
  nondeterministic : int list;
  urgency_cut : int list;
}

exception Nondeterministic of int
exception Divergence of int

let nondeterministic_states imc =
  List.filter
    (fun s -> List.length (Imc.interactive_out imc s) >= 2)
    (Imc.unstable_states imc)

(* Follow immediate transitions from [start] until tangible states,
   multiplying branch probabilities and collecting visible labels.
   Entries are merged by (target, action sequence). *)
let closure imc ~scheduler ~is_tangible start =
  let labels = Imc.labels imc in
  let emitted : (int * string list, float) Hashtbl.t = Hashtbl.create 8 in
  let expansions = ref 0 in
  let total = ref 0.0 in
  let rec expand state prob actions_rev =
    if prob < 1e-14 then ()
    else if is_tangible state then begin
      let key = (state, List.rev actions_rev) in
      let current = Option.value ~default:0.0 (Hashtbl.find_opt emitted key) in
      Hashtbl.replace emitted key (current +. prob);
      total := !total +. prob
    end
    else begin
      incr expansions;
      if !expansions > 200_000 then raise (Divergence start);
      let choices = Imc.interactive_out imc state in
      let follow p (label, dst) =
        let actions_rev =
          if label = Label.tau then actions_rev
          else Label.name labels label :: actions_rev
        in
        expand dst p actions_rev
      in
      match choices, scheduler with
      | [], _ -> assert false (* vanishing states have choices *)
      | [ only ], _ -> follow prob only
      | _ :: _ :: _, Fail -> raise (Nondeterministic state)
      | _ :: _ :: _, Uniform ->
        let p = prob /. float_of_int (List.length choices) in
        List.iter (follow p) choices
      | _ :: _ :: _, Deterministic choose ->
        let index = choose state in
        (match List.nth_opt choices index with
         | Some choice -> follow prob choice
         | None -> invalid_arg "To_ctmc: scheduler index out of range")
    end
  in
  expand start 1.0 [];
  if !total < 1.0 -. 1e-6 then raise (Divergence start);
  (* renormalize the epsilon lost to the probability floor *)
  Hashtbl.fold (fun (dst, actions) p acc -> (dst, actions, p /. !total) :: acc)
    emitted []

let convert ?(scheduler = Uniform) imc =
  let n = Imc.nb_states imc in
  let has_interactive = Array.make n false in
  Imc.iter_interactive imc (fun s _ _ -> has_interactive.(s) <- true);
  let is_tangible s = not has_interactive.(s) in
  let urgency_cut = ref [] in
  let has_markovian = Array.make n false in
  Imc.iter_markovian imc (fun s _ _ -> has_markovian.(s) <- true);
  for s = n - 1 downto 0 do
    if has_interactive.(s) && has_markovian.(s) then urgency_cut := s :: !urgency_cut
  done;
  (* number the tangible states *)
  let ctmc_state_of_imc = Array.make n (-1) in
  let tangible_count = ref 0 in
  for s = 0 to n - 1 do
    if is_tangible s then begin
      ctmc_state_of_imc.(s) <- !tangible_count;
      incr tangible_count
    end
  done;
  let closure_cache : (int, (int * string list * float) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let closure_of s =
    match Hashtbl.find_opt closure_cache s with
    | Some c -> c
    | None ->
      let c = closure imc ~scheduler ~is_tangible s in
      Hashtbl.replace closure_cache s c;
      c
  in
  let transitions = ref [] in
  Imc.iter_markovian imc (fun s r u ->
      if is_tangible s then begin
        if is_tangible u then
          transitions :=
            { Ctmc.src = ctmc_state_of_imc.(s); rate = r; actions = [];
              dst = ctmc_state_of_imc.(u) }
            :: !transitions
        else
          List.iter
            (fun (dst, actions, p) ->
               transitions :=
                 { Ctmc.src = ctmc_state_of_imc.(s); rate = r *. p; actions;
                   dst = ctmc_state_of_imc.(dst) }
                 :: !transitions)
            (closure_of u)
      end);
  (* initial state *)
  let imc_initial = Imc.initial imc in
  let artificial, initial_targets =
    if is_tangible imc_initial then (false, [])
    else begin
      match closure_of imc_initial with
      | [ (dst, _, p) ] when p > 1.0 -. 1e-9 -> (false, [ (dst, [], 1.0) ])
      | targets -> (true, targets)
    end
  in
  let nb_ctmc =
    !tangible_count + (if artificial then 1 else 0)
  in
  let initial_ctmc =
    if is_tangible imc_initial then ctmc_state_of_imc.(imc_initial)
    else if artificial then !tangible_count
    else
      match initial_targets with
      | [ (dst, _, _) ] -> ctmc_state_of_imc.(dst)
      | _ -> assert false
  in
  if artificial then begin
    (* leave the artificial state at a rate far above any model rate *)
    let escape_rate = 1e9 in
    List.iter
      (fun (dst, actions, p) ->
         transitions :=
           { Ctmc.src = !tangible_count; rate = escape_rate *. p; actions;
             dst = ctmc_state_of_imc.(dst) }
           :: !transitions)
      initial_targets
  end;
  let imc_state_of_ctmc = Array.make nb_ctmc (-1) in
  Array.iteri
    (fun imc_state c -> if c >= 0 then imc_state_of_ctmc.(c) <- imc_state)
    ctmc_state_of_imc;
  {
    ctmc = Ctmc.make ~nb_states:nb_ctmc ~initial:initial_ctmc !transitions;
    ctmc_state_of_imc;
    imc_state_of_ctmc;
    nondeterministic = nondeterministic_states imc;
    urgency_cut = !urgency_cut;
  }

let bounds imc ~metric ~limit =
  let nondet = nondeterministic_states imc in
  let choice_counts =
    List.map (fun s -> List.length (Imc.interactive_out imc s)) nondet
  in
  let space =
    List.fold_left
      (fun acc c -> if acc > limit then acc else acc * c)
      1 choice_counts
  in
  if space > limit then None
  else begin
    let nondet = Array.of_list nondet in
    let counts = Array.of_list choice_counts in
    let k = Array.length nondet in
    let assignment = Array.make k 0 in
    let lo = ref infinity and hi = ref neg_infinity in
    let evaluate () =
      let choose s =
        let rec find i =
          if i >= k then 0 else if nondet.(i) = s then assignment.(i) else find (i + 1)
        in
        find 0
      in
      let value = metric (convert ~scheduler:(Deterministic choose) imc) in
      if value < !lo then lo := value;
      if value > !hi then hi := value
    in
    let rec enumerate i =
      if i = k then evaluate ()
      else
        for c = 0 to counts.(i) - 1 do
          assignment.(i) <- c;
          enumerate (i + 1)
        done
    in
    enumerate 0;
    Some (!lo, !hi)
  end

let local_search ~better ~max_sweeps ~rng imc ~metric =
  let nondet = Array.of_list (nondeterministic_states imc) in
  let counts =
    Array.map (fun s -> List.length (Imc.interactive_out imc s)) nondet
  in
  let k = Array.length nondet in
  let assignment =
    Array.init k (fun i ->
        match rng with
        | None -> 0
        | Some rng -> Mv_util.Rng.int rng counts.(i))
  in
  let choose s =
    let rec find i =
      if i >= k then 0 else if nondet.(i) = s then assignment.(i) else find (i + 1)
    in
    find 0
  in
  let evaluate () = metric (convert ~scheduler:(Deterministic choose) imc) in
  let current = ref (evaluate ()) in
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < max_sweeps do
    improved := false;
    incr sweeps;
    for i = 0 to k - 1 do
      let original = assignment.(i) in
      for c = 0 to counts.(i) - 1 do
        if c <> assignment.(i) then begin
          let saved = assignment.(i) in
          assignment.(i) <- c;
          let value = evaluate () in
          if better value !current then begin
            current := value;
            improved := true
          end
          else assignment.(i) <- saved
        end
      done;
      ignore original
    done
  done;
  !current

let local_bounds ?(max_sweeps = 20) ?(restarts = 4) imc ~metric =
  let search better start =
    local_search ~better ~max_sweeps ~rng:start imc ~metric
  in
  let multi better pick =
    let deterministic = search better None in
    let rng = Mv_util.Rng.create 0x5EEDL in
    let rec loop best remaining =
      if remaining = 0 then best
      else
        let candidate = search better (Some (Mv_util.Rng.split rng)) in
        loop (pick best candidate) (remaining - 1)
    in
    loop deterministic restarts
  in
  let lo = multi (fun a b -> a < b -. 1e-12) min in
  let hi = multi (fun a b -> a > b +. 1e-12) max in
  (lo, hi)
