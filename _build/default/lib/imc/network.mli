(** Compositional IMC construction — the §4 core of the paper's flow:
    "the decorated model is turned into an IMC using a compositional
    approach (which alternates state space generation and stochastic
    state space minimization)".

    A network is an expression over IMC leaves; [`Compositional]
    evaluation lumps every intermediate IMC (stochastic bisimulation)
    before composing further, keeping the peak size small;
    [`Monolithic] composes first and never minimizes. Both yield
    stochastically bisimilar results. *)

type node =
  | Leaf of string * Imc.t
  | Par of string list * node * node (** synchronization gate set *)
  | Hide of string list * node

type strategy = [ `Monolithic | `Compositional ]

type step = {
  description : string;
  states : int;
  interactive : int;
  markovian : int;
}

type report = {
  result : Imc.t;
  steps : step list; (** in evaluation order *)
  peak_states : int;
}

val evaluate : strategy:strategy -> node -> report

(** [of_spec name spec] — generate a leaf from an MVL specification. *)
val of_spec : string -> Mv_calc.Ast.spec -> node

(** [par_list gates nodes] left-associates [Par gates]. *)
val par_list : string list -> node list -> node
