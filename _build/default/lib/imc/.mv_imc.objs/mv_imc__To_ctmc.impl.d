lib/imc/to_ctmc.ml: Array Hashtbl Imc List Mv_lts Mv_markov Mv_util Option
