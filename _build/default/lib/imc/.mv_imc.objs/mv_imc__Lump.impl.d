lib/imc/lump.ml: Array Hashtbl Imc List Mv_bisim Mv_lts Option Printf
