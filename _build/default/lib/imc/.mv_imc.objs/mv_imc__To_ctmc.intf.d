lib/imc/to_ctmc.mli: Imc Mv_markov
