lib/imc/imc.ml: Array Format Hashtbl List Mv_lts Printf Queue String
