lib/imc/phase.mli: Imc Mv_calc
