lib/imc/imc.mli: Format Mv_lts
