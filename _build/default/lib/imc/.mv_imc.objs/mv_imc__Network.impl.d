lib/imc/network.ml: Imc List Lump Mv_calc Printf String
