lib/imc/phase.ml: Array Imc List Mv_calc Mv_lts
