lib/imc/lump.mli: Imc Mv_bisim
