lib/imc/network.mli: Imc Mv_calc
