(** From IMC to an action-tagged CTMC by vanishing-state elimination.

    After closing the system (hide + maximal progress), interactive
    transitions are {e immediate}: a state with outgoing interactive
    transitions ("vanishing") is left in zero time. The conversion
    eliminates vanishing states, folding the visible labels crossed on
    the way into action tags of the resulting CTMC transitions, so that
    {!Mv_markov.Ctmc.throughput} can attribute throughputs to actions —
    the quantity the paper's flow reports.

    Nondeterminism (a vanishing state with several interactive
    transitions) is exactly the open issue named in the paper's
    conclusion ("new algorithms to handle nondeterminism, currently not
    accepted by the Markov solvers of CADP"): the [Fail] scheduler
    reproduces CADP's rejection, [Uniform] resolves uniformly at
    random, [Deterministic] applies a memoryless scheduler, and
    {!bounds} sweeps all deterministic schedulers for min/max bounds. *)

type scheduler =
  | Fail (** raise {!Nondeterministic} on any nondeterministic state *)
  | Uniform (** split probability equally among the choices *)
  | Deterministic of (int -> int)
      (** for each vanishing IMC state, the index of the chosen
          transition in {!Imc.interactive_out} order *)

type result = {
  ctmc : Mv_markov.Ctmc.t;
  ctmc_state_of_imc : int array; (** [-1] for vanishing states *)
  imc_state_of_ctmc : int array; (** [-1] for the artificial initial *)
  nondeterministic : int list;
      (** vanishing states with >= 2 choices (statically; [Fail] only
          rejects those actually reached during elimination) *)
  urgency_cut : int list;
      (** states where Markovian transitions were discarded because an
          immediate interactive transition pre-empts them *)
}

exception Nondeterministic of int

(** Raised when probability mass loops forever among vanishing states
    (a cycle of immediate transitions with no exit). *)
exception Divergence of int

val convert : ?scheduler:scheduler -> Imc.t -> result

(** Vanishing states with several choices. [Fail] rejects one of these
    only when the elimination actually reaches it (a statically
    nondeterministic state may be unreachable from every tangible
    state). *)
val nondeterministic_states : Imc.t -> int list

(** [bounds imc ~metric ~limit] evaluates [metric] under every
    deterministic memoryless scheduler and returns [(min, max)], or
    [None] when the scheduler space exceeds [limit]. *)
val bounds :
  Imc.t -> metric:(result -> float) -> limit:int -> (float * float) option

(** [local_bounds imc ~metric] — min/max of [metric] over
    deterministic memoryless schedulers by greedy policy improvement:
    starting from the first-choice scheduler, repeatedly flip the
    choice of one nondeterministic state when the exactly-evaluated
    metric improves, until a sweep changes nothing. Each accepted flip
    strictly improves the metric, so the search terminates; the result
    is a local optimum (it coincides with the exhaustive {!bounds} on
    every model small enough to compare — see the tests — but is not
    guaranteed globally optimal). Scales where exhaustive enumeration
    cannot. Random restarts ([restarts], default 4, deterministic
    seeds) mitigate local optima. @param max_sweeps default [20] *)
val local_bounds :
  ?max_sweeps:int ->
  ?restarts:int ->
  Imc.t ->
  metric:(result -> float) ->
  float * float
