(** Phase-type distributions and their insertion into models.

    The paper's flow instantiates each localized delay "by synchronizing
    LOTOS gates with an auxiliary LOTOS process expressing the delay as
    a phase-type distribution"; {!process} builds exactly that auxiliary
    process. Fixed-time (deterministic) delays have no exact finite
    representation: {!erlang_of_deterministic} gives the standard
    Erlang-k approximation whose space-accuracy tradeoff the paper's
    conclusion discusses (coefficient of variation 1/sqrt k with k
    states). *)

type t =
  | Exponential of float
  | Erlang of int * float (** [Erlang (k, lambda)]: k phases of rate lambda *)
  | Hypoexponential of float list (** distinct-rate phases in sequence *)

val mean : t -> float
val variance : t -> float

(** Coefficient of variation (stddev / mean). *)
val coefficient_of_variation : t -> float

(** Number of states the phase-type chain occupies. *)
val nb_phases : t -> int

(** [erlang_of_deterministic ~phases ~delay] approximates a fixed
    delay: mean [delay], CV [1/sqrt phases]. *)
val erlang_of_deterministic : phases:int -> delay:float -> t

(** The sequence of rates of the phase chain. *)
val rates : t -> float list

(** [process dist ~name ~start ~finish] is an MVL process declaration
    [name := start ; <phases> ; finish ; name] — synchronize [start]
    and [finish] with the functional model to instantiate the delay. *)
val process : t -> name:string -> start:string -> finish:string -> Mv_calc.Ast.process

(** [behavior dist k] is the delay phases as a behaviour prefix ending
    in [k] (for inline use). *)
val behavior : t -> Mv_calc.Ast.behavior -> Mv_calc.Ast.behavior

(** [absorbing_imc dist] is the IMC of the bare delay: phases then a
    single ["done"]-labelled move to an absorbing state (used by the
    Erlang accuracy experiment). *)
val absorbing_imc : t -> Imc.t
