type node =
  | Leaf of string * Imc.t
  | Par of string list * node * node
  | Hide of string list * node

type strategy = [ `Monolithic | `Compositional ]

type step = {
  description : string;
  states : int;
  interactive : int;
  markovian : int;
}

type report = {
  result : Imc.t;
  steps : step list;
  peak_states : int;
}

let rec describe = function
  | Leaf (name, _) -> name
  | Par (gates, a, b) ->
    Printf.sprintf "(%s |[%s]| %s)" (describe a) (String.concat "," gates)
      (describe b)
  | Hide (gates, n) ->
    Printf.sprintf "(hide %s in %s)" (String.concat "," gates) (describe n)

let evaluate ~strategy node =
  let steps = ref [] in
  let record description imc =
    steps :=
      { description; states = Imc.nb_states imc;
        interactive = Imc.nb_interactive imc;
        markovian = Imc.nb_markovian imc }
      :: !steps;
    imc
  in
  let reduce description imc =
    match strategy with
    | `Monolithic -> record description imc
    | `Compositional ->
      let imc = record description imc in
      record (description ^ " [lump]") (Lump.minimize imc)
  in
  let rec eval = function
    | Leaf (name, imc) -> reduce name imc
    | Par (gates, a, b) ->
      let ia = eval a and ib = eval b in
      reduce (describe (Par (gates, a, b))) (Imc.par ~sync:gates ia ib)
    | Hide (gates, n) ->
      let inner = eval n in
      reduce (describe (Hide (gates, n))) (Imc.hide inner ~gates)
  in
  let result = eval node in
  let steps = List.rev !steps in
  let peak_states = List.fold_left (fun acc s -> max acc s.states) 0 steps in
  { result; steps; peak_states }

let of_spec name spec =
  Leaf (name, Imc.of_lts (Mv_calc.State_space.lts spec))

let par_list gates = function
  | [] -> invalid_arg "Network.par_list: empty"
  | n :: rest -> List.fold_left (fun acc x -> Par (gates, acc, x)) n rest
