module Ast = Mv_calc.Ast
module Label = Mv_lts.Label

type t =
  | Exponential of float
  | Erlang of int * float
  | Hypoexponential of float list

let validate = function
  | Exponential r -> if r <= 0.0 then invalid_arg "Phase: rate must be positive"
  | Erlang (k, r) ->
    if k <= 0 then invalid_arg "Phase: Erlang needs at least one phase";
    if r <= 0.0 then invalid_arg "Phase: rate must be positive"
  | Hypoexponential rs ->
    if rs = [] then invalid_arg "Phase: empty hypoexponential";
    List.iter (fun r -> if r <= 0.0 then invalid_arg "Phase: rate must be positive") rs

let rates dist =
  validate dist;
  match dist with
  | Exponential r -> [ r ]
  | Erlang (k, r) -> List.init k (fun _ -> r)
  | Hypoexponential rs -> rs

let mean dist = List.fold_left (fun acc r -> acc +. (1.0 /. r)) 0.0 (rates dist)

let variance dist =
  List.fold_left (fun acc r -> acc +. (1.0 /. (r *. r))) 0.0 (rates dist)

let coefficient_of_variation dist = sqrt (variance dist) /. mean dist

let nb_phases dist = List.length (rates dist)

let erlang_of_deterministic ~phases ~delay =
  if phases <= 0 then invalid_arg "Phase.erlang_of_deterministic: phases";
  if delay <= 0.0 then invalid_arg "Phase.erlang_of_deterministic: delay";
  Erlang (phases, float_of_int phases /. delay)

let behavior dist k =
  List.fold_right (fun r acc -> Ast.Rate (r, acc)) (rates dist) k

let process dist ~name ~start ~finish =
  let body =
    Ast.act start []
      (behavior dist (Ast.act finish [] (Ast.Call (name, [], []))))
  in
  { Ast.proc_name = name; gates = []; params = []; body }

let absorbing_imc dist =
  let phase_rates = Array.of_list (rates dist) in
  let k = Array.length phase_rates in
  (* states 0..k-1 are phases, k is "delay elapsed", k+1 absorbing *)
  let labels = Label.create () in
  let done_label = Label.intern labels "done" in
  let markovian =
    List.init k (fun i -> (i, phase_rates.(i), i + 1))
  in
  Imc.make ~nb_states:(k + 2) ~initial:0 ~labels
    ~interactive:[ (k, done_label, k + 1) ]
    ~markovian
