type t = { words : Bytes.t; n : int }

(* One byte per 8 elements; the trailing byte is kept normalized (bits
   beyond [n] stay 0) so that [equal] and [cardinal] can work on raw
   bytes. *)

let nbytes n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make (nbytes n) '\000'; n }

let capacity s = s.n

let mem s i =
  i >= 0 && i < s.n
  && Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let check s i name = if i < 0 || i >= s.n then invalid_arg ("Bitset." ^ name)

let add s i =
  check s i "add";
  let b = i lsr 3 in
  Bytes.unsafe_set s.words b
    (Char.chr (Char.code (Bytes.unsafe_get s.words b) lor (1 lsl (i land 7))))

let remove s i =
  check s i "remove";
  let b = i lsr 3 in
  Bytes.unsafe_set s.words b
    (Char.chr
       (Char.code (Bytes.unsafe_get s.words b) land lnot (1 lsl (i land 7)) land 0xff))

let full n =
  let s = create n in
  for i = 0 to n - 1 do add s i done;
  s

let popcount_byte = Array.init 256 (fun c ->
  let rec count c = if c = 0 then 0 else (c land 1) + count (c lsr 1) in
  count c)

let cardinal s =
  let total = ref 0 in
  for b = 0 to Bytes.length s.words - 1 do
    total := !total + popcount_byte.(Char.code (Bytes.unsafe_get s.words b))
  done;
  !total

let copy s = { words = Bytes.copy s.words; n = s.n }

let same_universe a b name = if a.n <> b.n then invalid_arg ("Bitset." ^ name)

let equal a b =
  same_universe a b "equal";
  Bytes.equal a.words b.words

let union_into ~into src =
  same_universe into src "union_into";
  for b = 0 to Bytes.length into.words - 1 do
    Bytes.unsafe_set into.words b
      (Char.chr
         (Char.code (Bytes.unsafe_get into.words b)
          lor Char.code (Bytes.unsafe_get src.words b)))
  done

let inter_into ~into src =
  same_universe into src "inter_into";
  for b = 0 to Bytes.length into.words - 1 do
    Bytes.unsafe_set into.words b
      (Char.chr
         (Char.code (Bytes.unsafe_get into.words b)
          land Char.code (Bytes.unsafe_get src.words b)))
  done

let complement s =
  for b = 0 to Bytes.length s.words - 1 do
    Bytes.unsafe_set s.words b
      (Char.chr (lnot (Char.code (Bytes.unsafe_get s.words b)) land 0xff))
  done;
  (* renormalize the trailing partial byte *)
  for i = s.n to (Bytes.length s.words * 8) - 1 do
    let b = i lsr 3 in
    Bytes.unsafe_set s.words b
      (Char.chr
         (Char.code (Bytes.unsafe_get s.words b) land lnot (1 lsl (i land 7)) land 0xff))
  done

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let is_empty s =
  let rec scan b =
    b >= Bytes.length s.words
    || (Char.code (Bytes.unsafe_get s.words b) = 0 && scan (b + 1))
  in
  scan 0

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n members =
  let s = create n in
  List.iter (add s) members;
  s
