(** Deterministic pseudo-random numbers (splitmix64).

    The discrete-event simulator needs reproducible streams that do not
    depend on the global [Random] state; splitmix64 is small, fast and
    has well-understood statistical quality for simulation purposes. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform float in [[0, 1)]. *)
val float : t -> float

(** [int t bound] is uniform in [[0, bound-1]]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [exponential t ~rate] samples an exponential delay with the given
    rate (mean [1 /. rate]). [rate] must be positive. *)
val exponential : t -> rate:float -> float

(** [split t] derives an independent generator, advancing [t]. *)
val split : t -> t
