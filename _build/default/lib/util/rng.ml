type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t =
  (* take the top 53 bits for a uniform double in [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let f = float t in
  let i = int_of_float (f *. float_of_int bound) in
  if i >= bound then bound - 1 else i

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential";
  let u = float t in
  (* 1 - u is in (0, 1], so the log is finite *)
  -.log (1.0 -. u) /. rate

let split t = create (next_int64 t)
