(** Growable arrays of unboxed integers.

    Used throughout the state-space generation and minimization code,
    where transition lists grow incrementally and OCaml 5.1 has no
    [Dynarray]. *)

type t

(** [create ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

(** Number of elements currently stored. *)
val length : t -> int

(** [push v x] appends [x] at the end of [v]. *)
val push : t -> int -> unit

(** [get v i] is the [i]-th element. Raises [Invalid_argument] when out
    of bounds. *)
val get : t -> int -> int

(** [set v i x] overwrites the [i]-th element. Raises
    [Invalid_argument] when out of bounds. *)
val set : t -> int -> int -> unit

(** [to_array v] is a fresh array with the contents of [v]. *)
val to_array : t -> int array

(** [iter f v] applies [f] to every element in insertion order. *)
val iter : (int -> unit) -> t -> unit

(** [clear v] removes all elements (capacity is retained). *)
val clear : t -> unit
