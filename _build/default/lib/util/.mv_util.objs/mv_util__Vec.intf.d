lib/util/vec.mli:
