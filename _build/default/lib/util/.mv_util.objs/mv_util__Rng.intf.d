lib/util/rng.mli:
