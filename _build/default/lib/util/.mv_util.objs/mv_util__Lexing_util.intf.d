lib/util/lexing_util.mli:
