lib/util/bitset.mli:
