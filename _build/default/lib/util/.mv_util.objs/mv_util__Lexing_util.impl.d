lib/util/lexing_util.ml: Buffer List Printf String
