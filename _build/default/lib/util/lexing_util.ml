type token =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Punct of string
  | Eof

exception Lex_error of string

type t = {
  text : string;
  symbols : string list; (* longest first *)
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let fail line msg = raise (Lex_error (Printf.sprintf "line %d: %s" line msg))

let rec skip_space t =
  if t.pos < String.length t.text then
    match t.text.[t.pos] with
    | ' ' | '\t' | '\r' -> t.pos <- t.pos + 1; skip_space t
    | '\n' -> t.pos <- t.pos + 1; t.line <- t.line + 1; skip_space t
    | '(' when t.pos + 1 < String.length t.text && t.text.[t.pos + 1] = '*' ->
      skip_comment t 0; skip_space t
    | _ -> ()

and skip_comment t depth =
  (* called with pos on "(*"; nests *)
  t.pos <- t.pos + 2;
  let rec scan () =
    if t.pos + 1 >= String.length t.text then fail t.line "unterminated comment"
    else if t.text.[t.pos] = '*' && t.text.[t.pos + 1] = ')' then t.pos <- t.pos + 2
    else if t.text.[t.pos] = '(' && t.text.[t.pos + 1] = '*' then begin
      skip_comment t (depth + 1); scan ()
    end else begin
      if t.text.[t.pos] = '\n' then t.line <- t.line + 1;
      t.pos <- t.pos + 1;
      scan ()
    end
  in
  scan ()

let match_symbol t =
  let remaining = String.length t.text - t.pos in
  let matches sym =
    String.length sym <= remaining
    && String.sub t.text t.pos (String.length sym) = sym
  in
  List.find_opt matches t.symbols

let scan t =
  skip_space t;
  t.tok_line <- t.line;
  if t.pos >= String.length t.text then Eof
  else
    let c = t.text.[t.pos] in
    if is_ident_start c then begin
      let start = t.pos in
      while t.pos < String.length t.text && is_ident_char t.text.[t.pos] do
        t.pos <- t.pos + 1
      done;
      Ident (String.sub t.text start (t.pos - start))
    end
    else if is_digit c then begin
      let start = t.pos in
      while t.pos < String.length t.text && is_digit t.text.[t.pos] do
        t.pos <- t.pos + 1
      done;
      let is_float =
        t.pos + 1 < String.length t.text
        && t.text.[t.pos] = '.'
        && is_digit t.text.[t.pos + 1]
      in
      if is_float then begin
        t.pos <- t.pos + 1;
        while t.pos < String.length t.text && is_digit t.text.[t.pos] do
          t.pos <- t.pos + 1
        done;
        Float (float_of_string (String.sub t.text start (t.pos - start)))
      end
      else Int (int_of_string (String.sub t.text start (t.pos - start)))
    end
    else if c = '"' then begin
      t.pos <- t.pos + 1;
      let buffer = Buffer.create 16 in
      let rec scan () =
        if t.pos >= String.length t.text then fail t.line "unterminated string"
        else
          match t.text.[t.pos] with
          | '"' -> t.pos <- t.pos + 1
          | '\\' when t.pos + 1 < String.length t.text ->
            Buffer.add_char buffer t.text.[t.pos + 1];
            t.pos <- t.pos + 2;
            scan ()
          | '\n' -> fail t.line "newline in string"
          | ch ->
            Buffer.add_char buffer ch;
            t.pos <- t.pos + 1;
            scan ()
      in
      scan ();
      Str (Buffer.contents buffer)
    end
    else
      match match_symbol t with
      | Some sym -> t.pos <- t.pos + String.length sym; Punct sym
      | None -> t.pos <- t.pos + 1; Punct (String.make 1 c)

let make ~symbols text =
  let by_length_desc a b = compare (String.length b) (String.length a) in
  let t =
    { text; symbols = List.sort by_length_desc symbols;
      pos = 0; line = 1; tok = Eof; tok_line = 1 }
  in
  t.tok <- scan t;
  t

let peek t = t.tok
let line t = t.tok_line

let next t =
  let tok = t.tok in
  t.tok <- scan t;
  tok

let string_of_token = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Str s -> Printf.sprintf "string %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "float %g" f
  | Punct p -> Printf.sprintf "%S" p
  | Eof -> "end of input"

let error t msg = fail t.tok_line msg

let expect t p =
  match next t with
  | Punct q when q = p -> ()
  | tok -> error t (Printf.sprintf "expected %S, got %s" p (string_of_token tok))

let expect_ident t =
  match next t with
  | Ident s -> s
  | tok -> error t (Printf.sprintf "expected identifier, got %s" (string_of_token tok))

let eat t p =
  match t.tok with
  | Punct q when q = p -> ignore (next t); true
  | Ident _ | Int _ | Float _ | Str _ | Punct _ | Eof -> false
