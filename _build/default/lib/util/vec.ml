type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let ensure v n =
  if n > Array.length v.data then begin
    let capacity = max n (2 * Array.length v.data) in
    let data = Array.make capacity 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i name =
  if i < 0 || i >= v.len then invalid_arg ("Vec." ^ name)

let get v i = check v i "get"; v.data.(i)
let set v i x = check v i "set"; v.data.(i) <- x
let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let clear v = v.len <- 0
