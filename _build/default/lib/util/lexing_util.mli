(** A tiny hand-rolled scanner shared by the MVL, CHP and mu-calculus
    parsers.

    Tokenization rules: identifiers are [[A-Za-z_][A-Za-z0-9_']*],
    numbers are decimal integers or floats, punctuation is matched
    greedily against a caller-supplied list of multi-character symbols,
    ["(*"]..["*)"] comments nest, and whitespace separates tokens. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string (** double-quoted; backslash escapes the next char *)
  | Punct of string
  | Eof

(** Raised on malformed input; carries a human-readable message with a
    line number. *)
exception Lex_error of string

type t

(** [make ~symbols text] prepares a scanner. [symbols] lists the
    multi-character punctuation tokens (e.g. ["|[", "]|", "->", ":="]);
    single characters always lex as one-character [Punct]. *)
val make : symbols:string list -> string -> t

(** Current lookahead token without consuming it. *)
val peek : t -> token

(** Consume and return the current token. *)
val next : t -> token

(** 1-based line of the current lookahead (for error messages). *)
val line : t -> int

(** [expect t p] consumes the next token and fails with [Lex_error]
    unless it is [Punct p]. *)
val expect : t -> string -> unit

(** [expect_ident t] consumes an identifier or fails. *)
val expect_ident : t -> string

(** [eat t p] consumes a [Punct p] if it is the lookahead and reports
    whether it did. *)
val eat : t -> string -> bool

(** [error t msg] raises [Lex_error] mentioning the current line. *)
val error : t -> string -> 'a
