(** Dense bitsets over [0 .. n-1].

    The mu-calculus evaluator and the reachability analyses manipulate
    state sets of a fixed universe size; a packed representation keeps
    the fixpoint iterations cheap. *)

type t

(** [create n] is the empty set over universe [0 .. n-1]. *)
val create : int -> t

(** Universe size the set was created with. *)
val capacity : t -> int

(** [full n] is the set containing all of [0 .. n-1]. *)
val full : int -> t

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

(** Number of elements in the set. *)
val cardinal : t -> int

val copy : t -> t

(** [equal a b] — both sets must share the same universe size. *)
val equal : t -> t -> bool

(** In-place union: [union_into ~into src] adds all of [src] to [into]. *)
val union_into : into:t -> t -> unit

(** In-place intersection. *)
val inter_into : into:t -> t -> unit

(** In-place complement with respect to the universe. *)
val complement : t -> unit

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val is_empty : t -> bool
val to_list : t -> int list
val of_list : int -> int list -> t
