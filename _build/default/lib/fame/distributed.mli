(** Distributed (message-passing) MSI directory protocol for
    verification.

    Unlike {!Protocol} (which keeps the joint state exact for
    performance prediction), this model gives each cache and the
    directory their own processes communicating over request / grant /
    invalidate / write-back channels, so the protocol races are real:
    in particular a cache that requested an upgrade can receive an
    invalidation for the very line it is waiting on and must answer it
    before its grant arrives.

    A monitor process observes each cache entering and leaving the
    Modified state and emits [error] if both caches are Modified at
    once; the coherence theorem is [never error] plus deadlock
    freedom. The [Dropped_invalidation] bug variant (the directory
    grants exclusivity without invalidating the sharer) is caught by
    the same check — the paper's workflow of finding "functional
    issues" by model checking. *)

type bug =
  | Correct
  | Dropped_invalidation
      (** directory skips the invalidate/ack exchange when granting
          exclusive over a shared line *)
  | Grant_before_ack
      (** directory sends the invalidation but grants exclusivity
          without waiting for the acknowledgement — the transient
          window where both caches believe they own the line *)

(** The complete closed specification: 2 CPUs + 2 caches + directory +
    monitor. *)
val spec : bug -> Mv_calc.Ast.spec

(** Properties expected of the correct protocol: coherence (never
    [error]), deadlock freedom, and "a write request can always be
    granted eventually" (AG EF). *)
val properties : (string * Mv_mcl.Formula.t) list

(** The coherence property alone (fails on [Dropped_invalidation]). *)
val coherence : string * Mv_mcl.Formula.t
