(** Cache-coherence protocol engine (performance model).

    For latency prediction the two-node protocol is modeled by its
    joint line state (the cross product of both caches' MSI/MESI
    states is small and the directory keeps it exact); each CPU
    operation triggers a number of interconnect transfers that depends
    on the protocol variant and the current state. The generated MVL
    [Line] process accepts an operation gate, performs one [xfer]
    rendezvous per protocol message (served by the topology process,
    which adds the delays), and returns to its dispatch state.

    For the message-race verification model see {!Distributed}. *)

type variant =
  | Msi
  | Mesi (** adds the Exclusive state: silent upgrade on private lines *)
  | Msi_migratory
      (** migratory-sharing optimization: a read of a remotely-modified
          line transfers ownership instead of downgrading to shared *)

type op =
  | Read of int (** node 0 or 1 *)
  | Write of int

(** Joint line states (node0 state, node1 state); [E*] states are only
    reachable under [Mesi]. *)
type state = II | SI | IS | SS | MI | IM | EI | IE

val state_name : state -> string
val all_states : state list

(** [step variant state op] is [(next_state, nb_messages)]: the number
    of interconnect transfers the operation costs (0 = cache hit). *)
val step : variant -> state -> op -> state * int

(** [line_process variant] is the MVL text of the [Line] process
    (dispatching on gates [read0], [read1], [write0], [write1], doing
    [xfer] per message) together with the enum declaration it needs.
    The process is named ["Line"] and takes the current joint state. *)
val line_process : variant -> string

(** Messages per operation, for analytic sanity checks:
    [messages variant ops] folds {!step} from [II]. *)
val messages : variant -> op list -> int

val variant_name : variant -> string
