module Ast = Mv_calc.Ast

type t = Bus | Ring | Crossbar

let name = function Bus -> "bus" | Ring -> "ring" | Crossbar -> "crossbar"
let all = [ Bus; Ring; Crossbar ]

let hops = function Bus -> 1 | Ring -> 2 | Crossbar -> 1
let contended = function Bus | Ring -> true | Crossbar -> false

let service_text topology ~xfer_rate =
  String.concat ""
    (List.init (hops topology) (fun _ -> Printf.sprintf "rate %.12g ; " xfer_rate))

let process_text topology ~xfer_rate ~bg_rate =
  let serve = service_text topology ~xfer_rate in
  if contended topology then
    Printf.sprintf
      {|
process Net :=
    xfer ; %sNet
 [] bgxfer ; %sNet
process Bg := rate %.12g ; bgxfer ; Bg
|}
      serve serve bg_rate
  else
    Printf.sprintf {|
process Net := xfer ; %sNet
|} serve

let net_behavior topology =
  if contended topology then
    Ast.Par (Ast.Gates [ "bgxfer" ], Ast.Call ("Net", [], []), Ast.Call ("Bg", [], []))
  else Ast.Call ("Net", [], [])
