(** N-node CC-NUMA coherence (directory-based MSI with message
    endpoints) — the scaled-up FAME2 model.

    Unlike the two-node {!Protocol} engine (which only counts
    messages), this model tracks {e who talks to whom}: each protocol
    message is a [(source, destination)] pair, the line's home
    directory lives on node 0, and the interconnect charges a
    topology-dependent number of hops per message (ring distance,
    single bus transaction, dedicated crossbar path). NUMA effects
    fall out naturally: node 0 reaches its home directory for free,
    and on a ring the cost of a ping-pong grows with the partner's
    distance.

    State space: with [nodes <= 4] the joint line state (owner +
    sharer set) stays small enough for exhaustive generation. *)

(** Joint state of one cache line across all nodes. [owner = Some j]
    means node [j] holds it Modified (and is the only sharer);
    otherwise [sharers] is the bitmask of nodes holding it Shared. *)
type line_state = { owner : int option; sharers : int }

val initial_state : line_state

(** [step ~nodes state op] — next state and protocol messages as
    [(src, dst)] node pairs (the directory is node 0). Raises
    [Invalid_argument] for a node outside [0 .. nodes-1]. *)
val step : nodes:int -> line_state -> Protocol.op -> line_state * (int * int) list

(** Hops charged for one message on a topology ([0] = node-local, no
    interconnect use). *)
val hops : nodes:int -> Topology.t -> src:int -> dst:int -> int

type benchmark =
  | Token_ring (** the token circulates 0 -> 1 -> ... -> N-1 -> 0 *)
  | Pair_pingpong of int (** node 0 ping-pongs with the given partner *)

val benchmark_name : benchmark -> string

(** Full MVL model: benchmark driver + enumerated line process +
    hop-aware interconnect. *)
val spec :
  nodes:int -> Topology.t -> benchmark -> rates:Benchmark.rates -> Mv_calc.Ast.spec

(** Mean latency of one benchmark round. *)
val latency :
  nodes:int -> Topology.t -> benchmark -> rates:Benchmark.rates -> float
