type variant = Msi | Mesi | Msi_migratory

type op = Read of int | Write of int

type state = II | SI | IS | SS | MI | IM | EI | IE

let state_name = function
  | II -> "II" | SI -> "SI" | IS -> "IS" | SS -> "SS"
  | MI -> "MI" | IM -> "IM" | EI -> "EI" | IE -> "IE"

let all_states = [ II; SI; IS; SS; MI; IM; EI; IE ]

let variant_name = function
  | Msi -> "MSI"
  | Mesi -> "MESI"
  | Msi_migratory -> "MSI+migratory"

(* Transfer counts: request, data, invalidate, ack, and write-back
   each count as one interconnect message. *)

(* node-0 operations; node-1 is handled by mirroring *)
let step0 variant state op0 =
  match variant, op0, state with
  (* ---- reads ---- *)
  | Msi, `R, (II | EI) -> (SI, 2) (* miss: request + data *)
  | Msi, `R, (IE | IS) -> (SS, 2)
  | (Msi | Mesi | Msi_migratory), `R, SI -> (SI, 0)
  | (Msi | Mesi | Msi_migratory), `R, SS -> (SS, 0)
  | (Msi | Mesi | Msi_migratory), `R, MI -> (MI, 0)
  | Msi, `R, IM -> (SS, 3) (* request + write-back + data *)
  | Mesi, `R, II -> (EI, 2) (* exclusive-clean fill *)
  | Mesi, `R, EI -> (EI, 0)
  | Mesi, `R, IE -> (SS, 2) (* remote E degrades to shared, clean *)
  | Mesi, `R, IS -> (SS, 2)
  | Mesi, `R, IM -> (SS, 3)
  | Msi_migratory, `R, (II | EI) -> (SI, 2)
  | Msi_migratory, `R, (IE | IS) -> (SS, 2)
  | Msi_migratory, `R, IM -> (MI, 3) (* ownership migrates to the reader *)
  (* ---- writes ---- *)
  | (Msi | Msi_migratory), `W, (II | EI) -> (MI, 2) (* request + data *)
  | (Msi | Mesi | Msi_migratory), `W, SI -> (MI, 1) (* upgrade *)
  | (Msi | Msi_migratory), `W, (IS | IE) -> (MI, 4) (* req + inv + ack + data *)
  | (Msi | Mesi | Msi_migratory), `W, SS -> (MI, 3) (* upgrade + inv + ack *)
  | (Msi | Mesi | Msi_migratory), `W, MI -> (MI, 0)
  | (Msi | Mesi | Msi_migratory), `W, IM -> (MI, 3) (* req + write-back + data *)
  | Mesi, `W, II -> (MI, 2)
  | Mesi, `W, EI -> (MI, 0) (* silent upgrade: the MESI gain *)
  | Mesi, `W, (IS | IE) -> (MI, 4)

let mirror = function
  | II -> II | SS -> SS
  | SI -> IS | IS -> SI
  | MI -> IM | IM -> MI
  | EI -> IE | IE -> EI

let step variant state = function
  | Read 0 -> step0 variant state `R
  | Write 0 -> step0 variant state `W
  | Read 1 ->
    let next, messages = step0 variant (mirror state) `R in
    (mirror next, messages)
  | Write 1 ->
    let next, messages = step0 variant (mirror state) `W in
    (mirror next, messages)
  | Read _ | Write _ -> invalid_arg "Protocol.step: node must be 0 or 1"

let messages variant ops =
  let _, total =
    List.fold_left
      (fun (state, acc) op ->
         let next, m = step variant state op in
         (next, acc + m))
      (II, 0) ops
  in
  total

let line_process variant =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "type lstate = { II, SI, IS, SS, MI, IM, EI, IE }\n";
  let op_gate = function
    | Read i -> Printf.sprintf "read%d" i
    | Write i -> Printf.sprintf "write%d" i
  in
  let ops = [ Read 0; Read 1; Write 0; Write 1 ] in
  Buffer.add_string buffer "process Line (st : lstate) :=\n";
  List.iteri
    (fun i op ->
       Buffer.add_string buffer
         (Printf.sprintf " %s %s ; Do_%s(st)\n"
            (if i = 0 then "  " else "[]")
            (op_gate op) (op_gate op)))
    ops;
  List.iter
    (fun op ->
       Buffer.add_string buffer
         (Printf.sprintf "process Do_%s (st : lstate) :=\n" (op_gate op));
       List.iteri
         (fun i state ->
            let next, m = step variant state op in
            let transfers = String.concat "" (List.init m (fun _ -> "xfer ; ")) in
            Buffer.add_string buffer
              (Printf.sprintf " %s [st == %s] -> %sLine(%s)\n"
                 (if i = 0 then "  " else "[]")
                 (state_name state) transfers (state_name next)))
         all_states)
    ops;
  Buffer.contents buffer
