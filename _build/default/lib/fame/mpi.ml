type implementation = Eager | Rendezvous

let name = function Eager -> "eager" | Rendezvous -> "rendezvous"
let all = [ Eager; Rendezvous ]

(* Steps of a transfer:
   - [Op]: a flag operation through the coherence protocol (the flag
     lines are contended, so their cost depends on protocol state);
   - [Payload]: one payload word moving through the interconnect (a
     write miss and a read miss on a private line: the protocol cost
     is constant, so it is modeled as raw transfers);
   - [Copy]: a local mailbox-to-user-buffer copy (eager only). *)
type step = Op of Protocol.op | Payload | Copy

(* write miss (request + data) + read miss (request + data) *)
let xfers_per_word = 4

let transfer implementation ~src ~dst ~size =
  let flag_write who = Op (Protocol.Write who) in
  let flag_read who = Op (Protocol.Read who) in
  let payload = List.init size (fun _ -> Payload) in
  let copies n = List.init n (fun _ -> Copy) in
  match implementation with
  | Eager ->
    (* payload into the mailbox, completion flag, poll, copy out *)
    payload @ [ flag_write src; flag_read dst ] @ copies size
  | Rendezvous ->
    (* request / ready handshake, then payload straight to the user
       buffer, then completion flag *)
    [ flag_write src; flag_read dst; flag_write dst; flag_read src ]
    @ payload
    @ [ flag_write src; flag_read dst ]

let round implementation ~size =
  transfer implementation ~src:0 ~dst:1 ~size
  @ transfer implementation ~src:1 ~dst:0 ~size

let ops_per_round implementation ~size =
  List.filter_map
    (function Op op -> Some op | Copy | Payload -> None)
    (round implementation ~size)

let copies_per_round implementation ~size =
  List.length
    (List.filter (function Copy -> true | Op _ | Payload -> false)
       (round implementation ~size))

let payload_xfers_per_round implementation ~size =
  xfers_per_word
  * List.length
      (List.filter (function Payload -> true | Op _ | Copy -> false)
         (round implementation ~size))

(* Centralized barrier: both nodes bump the counter line, the last
   one writes the release flag, then both read it. On a single modeled
   line the counter and the flag coincide; the operation sequence
   keeps the protocol traffic faithful. *)
let barrier_ops () =
  [ Protocol.Write 0; Protocol.Write 1; (* arrivals *)
    Protocol.Write 1; (* release written by the last arriver *)
    Protocol.Read 0; Protocol.Read 1 (* both observe the release *) ]

let op_gate = function
  | Protocol.Read i -> Printf.sprintf "read%d" i
  | Protocol.Write i -> Printf.sprintf "write%d" i

let barrier_driver_text () =
  let buffer = Buffer.create 128 in
  Buffer.add_string buffer "process Round := ";
  List.iter
    (fun op -> Buffer.add_string buffer (op_gate op ^ " ; "))
    (barrier_ops ());
  Buffer.add_string buffer "round ; Round\n";
  Buffer.contents buffer

let driver_text implementation ~size ~copy_rate =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "process Round := ";
  List.iter
    (fun step ->
       match step with
       | Op op -> Buffer.add_string buffer (op_gate op ^ " ; ")
       | Payload ->
         for _ = 1 to xfers_per_word do
           Buffer.add_string buffer "xfer ; "
         done
       | Copy -> Buffer.add_string buffer (Printf.sprintf "rate %.12g ; " copy_rate))
    (round implementation ~size);
  Buffer.add_string buffer "round ; Round\n";
  Buffer.contents buffer
