module Formula = Mv_mcl.Formula
module Action = Mv_mcl.Action_formula

type bug = Correct | Dropped_invalidation | Grant_before_ack

(* Cache [i]: MSI with explicit wait states. A cache waiting for an
   exclusive grant must still answer invalidations (the upgrade race),
   and so must a cache that has committed to upgrading but has not yet
   won the request channel ([Up]): without the latter the directory
   can wait forever for an invalidation ack while the cache waits for
   the directory — the deadlock this model originally exposed. *)
let cache_text i =
  Printf.sprintf
    {|
process Cache%dI :=
    read%d ; req%d !RS ; Wait%dS
 [] write%d ; req%d !RM ; Wait%dM
process Wait%dS := grant%d ?g:gr ; Cache%dS
process Wait%dM :=
    grant%d ?g:gr ; Cache%dM
 [] inv%d ; iack%d ; Wait%dM
process Up%d :=
    req%d !RM ; Wait%dM
 [] inv%d ; iack%d ; Up%d
process Cache%dS :=
    read%d ; Cache%dS
 [] write%d ; Up%d
 [] inv%d ; iack%d ; Cache%dI
process Cache%dM :=
    read%d ; Cache%dM
 [] write%d ; Cache%dM
 [] wb%d ; wdata%d ; Cache%dI
process Cpu%d := read%d ; Cpu%d [] write%d ; Cpu%d
|}
    i i i i i i i
    i i i
    i i i i i i
    i i i i i i
    i i i i i i i i
    i i i i i i i i
    i i i i i

(* Directory: one transaction at a time. [o] is the request kind, the
   state tracks the owner/sharers of the single modeled line. *)
let serve_text bug ~me ~other =
  let invalidate_path st =
    match bug with
    | Correct ->
      Printf.sprintf " [] [o == RM and st == %s] -> inv%d ; iack%d ; grant%d !GM ; Dir(DM%d)\n"
        st other other me me
    | Dropped_invalidation ->
      (* the injected functional issue: the sharer is never told *)
      Printf.sprintf " [] [o == RM and st == %s] -> grant%d !GM ; Dir(DM%d)\n" st
        me me
    | Grant_before_ack ->
      (* the grant races ahead of the acknowledgement *)
      Printf.sprintf
        " [] [o == RM and st == %s] -> inv%d ; grant%d !GM ; iack%d ; Dir(DM%d)\n"
        st other me other me
  in
  let s_me = Printf.sprintf "DS%d" me
  and s_other = Printf.sprintf "DS%d" other
  and m_me = Printf.sprintf "DM%d" me
  and m_other = Printf.sprintf "DM%d" other in
  Printf.sprintf "process Serve%d (st : dstate, o : op) :=\n" me
  ^ Printf.sprintf "    [o == RS and st == DI] -> grant%d !GS ; Dir(%s)\n" me s_me
  ^ Printf.sprintf " [] [o == RS and st == %s] -> grant%d !GS ; Dir(%s)\n" s_me me s_me
  ^ Printf.sprintf " [] [o == RS and st == %s] -> grant%d !GS ; Dir(DSB)\n" s_other me
  ^ Printf.sprintf " [] [o == RS and st == DSB] -> grant%d !GS ; Dir(DSB)\n" me
  ^ Printf.sprintf " [] [o == RS and st == %s] -> grant%d !GS ; Dir(%s)\n" m_me me m_me
  (* the owner writes back to Invalid, so only the requester shares *)
  ^ Printf.sprintf " [] [o == RS and st == %s] -> wb%d ; wdata%d ; grant%d !GS ; Dir(%s)\n"
      m_other other other me s_me
  ^ Printf.sprintf " [] [o == RM and st == DI] -> grant%d !GM ; Dir(%s)\n" me m_me
  ^ Printf.sprintf " [] [o == RM and st == %s] -> grant%d !GM ; Dir(%s)\n" s_me me m_me
  ^ invalidate_path s_other
  ^ invalidate_path "DSB"
  ^ Printf.sprintf " [] [o == RM and st == %s] -> grant%d !GM ; Dir(%s)\n" m_me me m_me
  ^ Printf.sprintf " [] [o == RM and st == %s] -> wb%d ; wdata%d ; grant%d !GM ; Dir(%s)\n"
      m_other other other me m_me

let directory_text bug =
  {|
process Dir (st : dstate) :=
    req0 ?o:op ; Serve0(st, o)
 [] req1 ?o:op ; Serve1(st, o)
|}
  ^ serve_text bug ~me:0 ~other:1
  ^ serve_text bug ~me:1 ~other:0

(* Monitor: tracks both caches' states from the protocol messages it
   overhears (3-way rendezvous on grants, invalidation acks and
   write-backs) and reports any M/M or M/S overlap. *)
let monitor_text =
  {|
process Mon (s0 : cst, s1 : cst) :=
    grant0 ?g:gr ; ([g == GS] -> Chk(CS, s1) [] [g == GM] -> Chk(CM, s1))
 [] grant1 ?g:gr ; ([g == GS] -> Chk(s0, CS) [] [g == GM] -> Chk(s0, CM))
 [] iack0 ; Mon(CI, s1)
 [] iack1 ; Mon(s0, CI)
 [] wdata0 ; Mon(CI, s1)
 [] wdata1 ; Mon(s0, CI)
process Chk (s0 : cst, s1 : cst) :=
    [(s0 == CM and not (s1 == CI)) or (s1 == CM and not (s0 == CI))] -> error ; stop
 [] [not ((s0 == CM and not (s1 == CI)) or (s1 == CM and not (s0 == CI)))] -> i ; Mon(s0, s1)
|}

let spec bug =
  let text =
    "type op = { RS, RM }\ntype gr = { GS, GM }\n"
    ^ "type dstate = { DI, DS0, DS1, DSB, DM0, DM1 }\n"
    ^ "type cst = { CI, CS, CM }\n"
    ^ cache_text 0 ^ cache_text 1 ^ directory_text bug ^ monitor_text
    ^ {|
init
  ((Cpu0 ||| Cpu1)
   |[read0, write0, read1, write1]|
   ((Cache0I ||| Cache1I)
    |[req0, grant0, inv0, iack0, wb0, wdata0, req1, grant1, inv1, iack1, wb1, wdata1]|
    Dir(DI)))
  |[grant0, grant1, iack0, iack1, wdata0, wdata1]|
  Mon(CI, CI)
|}
  in
  Mv_calc.Parser.spec_of_string_checked text

let coherence =
  ("coherence: no M/M or M/S overlap", Formula.Macro.never (Action.Gate "error"))

let properties =
  [
    coherence;
    ("deadlock freedom", Formula.Macro.deadlock_free);
    ( "a write can always eventually be performed",
      Formula.Macro.always
        (Formula.Macro.possibly (Formula.Macro.can_do (Action.Gate "write0"))) );
  ]
