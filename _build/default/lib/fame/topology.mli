(** Interconnect topologies.

    Every protocol message is one [xfer] rendezvous served by the
    interconnect process; the topology decides how many exponential
    hops a transfer takes and whether background traffic contends for
    the same resource:

    - [Bus]: one hop on a shared medium; background traffic (rate
      [bg_rate]) competes for the single server;
    - [Ring]: two hops per transfer (average hop count of a 4-node
      ring), same shared-medium contention;
    - [Crossbar]: one hop on a dedicated path, no contention.

    [xfer_rate] is the per-hop service rate. *)

type t = Bus | Ring | Crossbar

val name : t -> string
val all : t list

(** [process_text topology ~xfer_rate ~bg_rate] — MVL text of the
    interconnect process (named ["Net"], serving gate [xfer]) and, when
    the topology contends, a background traffic source (["Bg"], gate
    [bgxfer]). *)
val process_text : t -> xfer_rate:float -> bg_rate:float -> string

(** The parallel composition of ["Net"] with its traffic source (to be
    synchronized with the protocol on [xfer]). *)
val net_behavior : t -> Mv_calc.Ast.behavior

(** Average hops per transfer (analytic helper). *)
val hops : t -> int

(** Whether background traffic shares the medium. *)
val contended : t -> bool
