(** The FAME2 MPI ping-pong benchmark assembled end to end: driver +
    coherence protocol + interconnect topology, predicted through the
    performance pipeline (the paper: "Bull was able to predict the
    latency of an MPI benchmark in different topologies, different
    software implementations of the MPI primitives, and different
    cache coherency protocols"). *)

type rates = {
  xfer_rate : float; (** interconnect per-hop service rate *)
  bg_rate : float; (** background traffic intensity (contended media) *)
  copy_rate : float; (** local memory-copy rate (per word) *)
}

val default_rates : rates

(** Full MVL specification of one benchmark configuration. *)
val spec :
  Protocol.variant ->
  Topology.t ->
  Mpi.implementation ->
  size:int ->
  rates:rates ->
  Mv_calc.Ast.spec

(** Mean round-trip latency: [1 / throughput(round)]. *)
val round_latency :
  Protocol.variant ->
  Topology.t ->
  Mpi.implementation ->
  size:int ->
  rates:rates ->
  float

(** Analytic lower bound (no contention, no queueing): messages x hops
    / xfer_rate + copies / copy_rate, for table sanity columns. *)
val latency_lower_bound :
  Protocol.variant -> Topology.t -> Mpi.implementation -> size:int -> rates:rates -> float

(** Mean latency of one barrier episode (see {!Mpi.barrier_ops}). *)
val barrier_latency : Protocol.variant -> Topology.t -> rates:rates -> float
