(** MPI benchmark {e programs} over the FAME2 substrate — the paper's
    "MPI software layer and MPI benchmark applications to be run over
    FAME2 mainframes" (§2).

    Each rank runs its own program; ranks execute {e concurrently} and
    interact only through messages and barriers, so communication can
    genuinely overlap (unlike the serialized single-driver benchmarks
    of {!Mpi}): two ranks sending simultaneously contend on a bus but
    not on a crossbar.

    Semantics of the primitives:
    - [Send { dst; size }]: pushes [size] payload words through the
      interconnect (hop count from the topology and rank distance,
      as in {!Numa.hops}), then hands a token to the (1-deep) channel
      buffer — an {e eager} send: it does not wait for the receiver,
      but a second send on the same channel blocks until the first was
      received.
    - [Recv { src; size = _ }]: consumes the token (the payload cost is
      charged at the sender).
    - [Barrier]: central coordinator; all ranks arrive, then all are
      released.
    - [Work mean]: local computation, exponential with the given mean.
    - [Loop (n, body)]: repeat [body] n times.

    Rank 0's program is wrapped in an implicit outer loop that emits a
    [round] action at each iteration; the other ranks loop implicitly
    as well, so steady-state throughput of [round] gives the mean time
    per iteration. *)

type instruction =
  | Send of { dst : int; size : int }
  | Recv of { src : int; size : int }
  | Barrier
  | Work of float (** mean duration *)
  | Loop of int * instruction list

type program = instruction list

(** [spec ~programs topology ~rates] — one program per rank (2 to 4
    ranks). Raises [Invalid_argument] on bad ranks, self-sends, or
    unmatched loops deeper than the supported nesting (loops may nest
    arbitrarily). *)
val spec :
  programs:program list ->
  Topology.t ->
  rates:Benchmark.rates ->
  Mv_calc.Ast.spec

(** Mean time per outer iteration (= 1 / throughput(round)). *)
val iteration_latency :
  programs:program list -> Topology.t -> rates:Benchmark.rates -> float

(** {1 Prebuilt benchmark programs} *)

(** Classic ping-pong between ranks 0 and [partner]. *)
val pingpong : partner:int -> size:int -> program list

(** All ranks send to their right neighbour simultaneously — the
    full-duplex overlap test where topologies differ the most. *)
val simultaneous_ring : ranks:int -> size:int -> program list

(** Compute-then-barrier iterations (bulk-synchronous skeleton). *)
val work_barrier : ranks:int -> work_mean:float -> program list
