(** The MPI software layer over shared memory: two implementations of
    point-to-point messaging, as sequences of cache operations (the
    paper's "different software implementations of the MPI
    primitives").

    - [Eager]: the sender writes payload and flag into the mailbox
      immediately; the receiver polls the flag, reads the payload and
      {e copies it} into the user buffer (one local copy delay per
      word).
    - [Rendezvous]: a ready-handshake first (two flag round trips),
      then the payload moves directly into the user buffer — no copy,
      but extra protocol latency.

    Eager wins on small messages, rendezvous on large ones; the
    crossover is the shape the benchmark tables reproduce. *)

type implementation = Eager | Rendezvous

val name : implementation -> string
val all : implementation list

(** Flag operations (through the coherence protocol) of one ping-pong
    round ([size] words per direction), in order. Payload words and
    local copies are not flag operations and do not appear here. *)
val ops_per_round : implementation -> size:int -> Protocol.op list

(** Local copy delays per round (eager only). *)
val copies_per_round : implementation -> size:int -> int

(** Raw interconnect transfers for the payload words of one round
    (each word is a write miss plus a read miss on a private line). *)
val payload_xfers_per_round : implementation -> size:int -> int

(** MVL text of the benchmark driver: [process Round := ... round ;
    Round] issuing the operation gates in order, with [rate copy_rate]
    prefixes for local copies. *)
val driver_text : implementation -> size:int -> copy_rate:float -> string

(** Cache operations of one centralized-barrier episode (both nodes
    increment the arrival counter line; the last arrival writes the
    release flag; both nodes read it). *)
val barrier_ops : unit -> Protocol.op list

(** Driver for the barrier benchmark ([round] marks each episode). *)
val barrier_driver_text : unit -> string
