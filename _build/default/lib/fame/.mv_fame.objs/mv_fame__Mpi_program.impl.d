lib/fame/mpi_program.ml: Benchmark List Mv_calc Mv_core Numa Printf String Sys Topology
