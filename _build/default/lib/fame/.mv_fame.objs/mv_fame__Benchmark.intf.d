lib/fame/benchmark.mli: Mpi Mv_calc Protocol Topology
