lib/fame/mpi.ml: Buffer List Printf Protocol
