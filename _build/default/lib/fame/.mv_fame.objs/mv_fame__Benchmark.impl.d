lib/fame/benchmark.ml: List Mpi Mv_calc Mv_core Printf Protocol Topology
