lib/fame/protocol.ml: Buffer List Printf String
