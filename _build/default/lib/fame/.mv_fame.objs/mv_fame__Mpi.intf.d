lib/fame/mpi.mli: Protocol
