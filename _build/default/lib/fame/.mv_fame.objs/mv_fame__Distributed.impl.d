lib/fame/distributed.ml: Mv_calc Mv_mcl Printf
