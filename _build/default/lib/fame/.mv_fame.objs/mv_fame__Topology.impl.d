lib/fame/topology.ml: List Mv_calc Printf String
