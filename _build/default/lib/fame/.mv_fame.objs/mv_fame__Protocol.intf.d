lib/fame/protocol.mli:
