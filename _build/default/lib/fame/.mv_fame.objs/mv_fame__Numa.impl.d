lib/fame/numa.ml: Benchmark Buffer Fun Hashtbl List Mv_calc Mv_core Printf Protocol String Topology
