lib/fame/mpi_program.mli: Benchmark Mv_calc Topology
