lib/fame/numa.mli: Benchmark Mv_calc Protocol Topology
