lib/fame/topology.mli: Mv_calc
