lib/fame/distributed.mli: Mv_calc Mv_mcl
