let pi ~arrival ~service ~k =
  if arrival <= 0.0 || service <= 0.0 then invalid_arg "Analytic.pi: rates";
  if k < 1 then invalid_arg "Analytic.pi: k";
  let rho = arrival /. service in
  let weights = Array.init (k + 1) (fun m -> rho ** float_of_int m) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.map (fun w -> w /. total) weights

let blocking ~arrival ~service ~k = (pi ~arrival ~service ~k).(k)

let throughput ~arrival ~service ~k =
  arrival *. (1.0 -. blocking ~arrival ~service ~k)

let mean_jobs ~arrival ~service ~k =
  let dist = pi ~arrival ~service ~k in
  let total = ref 0.0 in
  Array.iteri (fun m p -> total := !total +. (float_of_int m *. p)) dist;
  !total

let mean_latency ~arrival ~service ~k =
  mean_jobs ~arrival ~service ~k /. throughput ~arrival ~service ~k
