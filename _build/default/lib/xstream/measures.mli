(** Performance measures of the queue models, computed through the
    full flow (generation -> IMC -> CTMC -> steady state).

    Occupancy needs the queue length of each state, which the lumped
    chain no longer knows; [occupancy_distribution] therefore runs the
    conversion without lumping and reads the occupancy out of the
    behaviour terms. *)

type summary = {
  throughput : float; (** accepted-job rate (pop actions per time unit) *)
  mean_occupancy : float; (** average number of jobs in the queue *)
  mean_latency : float; (** queue sojourn time of accepted jobs (Little) *)
  blocking : float; (** steady-state probability that the queue is full *)
}

(** [occupancy_of_term ~queue term] extracts the first argument of the
    pending call to process [queue] inside [term] ([None] if the term
    has no such call — e.g. mid-rendezvous shapes). *)
val occupancy_of_term : queue:string -> Mv_calc.Ast.behavior -> int option

(** [occupancy_distribution ?queue spec ~capacity] — steady-state
    distribution of the occupancy of queue process [queue] (default
    ["Queue"]), indices [0..capacity]. *)
val occupancy_distribution :
  ?queue:string -> Mv_calc.Ast.spec -> capacity:int -> float array

(** [summary spec ~capacity] — throughput, occupancy, latency and
    blocking of the queue named ["Queue"] in [spec]. The spec must use
    the [pop] gate for departures. *)
val summary : ?queue:string -> Mv_calc.Ast.spec -> capacity:int -> summary

type spill_summary = {
  spill_throughput : float; (** pop rate *)
  mean_hw : float; (** average items in the hardware FIFO *)
  mean_spilled : float; (** average items parked in memory *)
  spilling : float; (** steady-state probability that the spill region
                        is non-empty *)
}

(** Statistics of a {!Queues.spill} model (reads both [Queue]
    arguments out of the state terms). *)
val spill_summary : Mv_calc.Ast.spec -> spill_summary
