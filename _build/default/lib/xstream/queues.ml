let queue_process_name = "Queue"

let spec_of_text = Mv_calc.Parser.spec_of_string_checked

let single ~arrival ~service ~capacity =
  if capacity < 1 then invalid_arg "Queues.single: capacity";
  if arrival <= 0.0 || service <= 0.0 then invalid_arg "Queues.single: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Producer := rate %.12g ; push ; Producer
process Consumer := pop ; rate %.12g ; Consumer
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}
       arrival service capacity capacity)

let system_capacity ~capacity = capacity + 2

let tandem ~arrival ~transfer ~service ~capacity1 ~capacity2 =
  if capacity1 < 1 || capacity2 < 1 then invalid_arg "Queues.tandem: capacity";
  if arrival <= 0.0 || transfer <= 0.0 || service <= 0.0 then
    invalid_arg "Queues.tandem: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Producer := rate %.12g ; push ; Producer
process Mover := mid ; rate %.12g ; push2 ; Mover
process Consumer := pop ; rate %.12g ; Consumer
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> mid ; Queue(n - 1)
process Queue2 (n : int[0..%d]) :=
    [n < %d] -> push2 ; Queue2(n + 1)
 [] [n > 0] -> pop ; Queue2(n - 1)
init ((Producer |[push]| Queue(0)) |[mid]| (Mover |[push2]| Queue2(0))) |[pop]| Consumer
|}
       arrival transfer service capacity1 capacity1 capacity2 capacity2)

let credit ~arrival ~service ~capacity ~credits =
  if credits < 1 || credits > capacity then invalid_arg "Queues.credit: credits";
  if arrival <= 0.0 || service <= 0.0 then invalid_arg "Queues.credit: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Producer := rate %.12g ; grant ; push ; Producer
process Consumer := pop ; free ; rate %.12g ; Consumer
process Credits (c : int[0..%d]) :=
    [c > 0] -> grant ; Credits(c - 1)
 [] [c < %d] -> free ; Credits(c + 1)
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init ((Producer |[grant, push]| (Credits(%d) ||| Queue(0))) |[pop, free]| Consumer)
|}
       arrival service credits credits capacity capacity credits)

let multi_producer ~arrival0 ~arrival1 ~service ~capacity =
  if capacity < 1 then invalid_arg "Queues.multi_producer: capacity";
  if arrival0 <= 0.0 || arrival1 <= 0.0 || service <= 0.0 then
    invalid_arg "Queues.multi_producer: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Producer0 := rate %.12g ; push0 ; Producer0
process Producer1 := rate %.12g ; push1 ; Producer1
process Consumer := pop ; rate %.12g ; Consumer
process Queue (n : int[0..%d]) :=
    [n < %d] -> push0 ; Queue(n + 1)
 [] [n < %d] -> push1 ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init ((Producer0 ||| Producer1) |[push0, push1]| Queue(0)) |[pop]| Consumer
|}
       arrival0 arrival1 service capacity capacity capacity)

let dual_server ~arrival ~service =
  if arrival <= 0.0 || service <= 0.0 then invalid_arg "Queues.dual_server: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Source := rate %.12g ; grab ; Source
process Engine := grab ; rate %.12g ; done ; Engine
init Source |[grab]| (Engine ||| Engine)
|}
       arrival service)

let spill ~arrival ~service ~refill ~hw_capacity ~spill_capacity =
  if hw_capacity < 1 || spill_capacity < 1 then invalid_arg "Queues.spill: capacities";
  if arrival <= 0.0 || service <= 0.0 || refill <= 0.0 then
    invalid_arg "Queues.spill: rates";
  spec_of_text
    (Printf.sprintf
       {|
process Producer := rate %.12g ; push ; Producer
process Consumer := pop ; rate %.12g ; Consumer
process Refiller := rate %.12g ; refill ; Refiller
process Queue (hw : int[0..%d], sp : int[0..%d]) :=
    [hw < %d and sp == 0] -> push ; Queue(hw + 1, sp)
 [] [hw == %d and sp < %d] -> push ; Queue(hw, sp + 1)
 [] [hw > 0] -> pop ; Queue(hw - 1, sp)
 [] [hw < %d and sp > 0] -> refill ; Queue(hw + 1, sp - 1)
init ((Producer |[push]| Queue(0, 0)) |[refill]| Refiller) |[pop]| Consumer
|}
       arrival service refill hw_capacity spill_capacity hw_capacity
       hw_capacity spill_capacity hw_capacity)

(* Data FIFOs: slots hold -1 (empty) or a value in 0..1; [h] is the
   head (next to pop), [t] the tail. *)

let fifo_header =
  {|
process Fifo (h : int[-1..1], t : int[-1..1]) :=
    [h == -1] -> push ?x:int[0..1] ; Fifo(x, -1)
 [] [h >= 0 and t == -1] -> push ?x:int[0..1] ; Fifo(h, x)
 [] [h >= 0 and t == -1] -> pop !h ; Fifo(-1, -1)
 [] [h >= 0 and t >= 0] -> pop !h ; Fifo(t, -1)
|}

let fifo_data () = spec_of_text (fifo_header ^ "\ninit Fifo(-1, -1)\n")

let fifo_lossy () =
  spec_of_text
    (fifo_header
     ^ {| [] [h >= 0 and t >= 0] -> push ?x:int[0..1] ; Fifo(h, t)
init Fifo(-1, -1)
|})

let fifo_unordered () =
  spec_of_text
    (fifo_header
     ^ {| [] [h >= 0 and t >= 0] -> pop !t ; Fifo(h, -1)
init Fifo(-1, -1)
|})
