(** Closed-form M/M/1/K results, used to validate the numerical
    pipeline end to end (generator -> IMC -> lumping -> CTMC -> solver
    must agree with these formulas on single-queue models). *)

(** [pi ~arrival ~service ~k] is the stationary distribution of the
    number of jobs in an M/M/1/K system, indices [0..k]. *)
val pi : arrival:float -> service:float -> k:int -> float array

(** Accepted-arrival (= departure) rate: [arrival *. (1 - pi.(k))]. *)
val throughput : arrival:float -> service:float -> k:int -> float

(** Blocking probability [pi.(k)]. *)
val blocking : arrival:float -> service:float -> k:int -> float

(** Expected number of jobs in system. *)
val mean_jobs : arrival:float -> service:float -> k:int -> float

(** Mean sojourn time of accepted jobs (Little's law). *)
val mean_latency : arrival:float -> service:float -> k:int -> float
