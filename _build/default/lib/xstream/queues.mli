(** xSTream-like queue models.

    The xSTream architecture moves streaming data through hardware
    FIFO queues with flow control; the paper's performance questions
    are their latency, throughput and occupancy. These builders produce
    MVL specifications for:

    - a single bounded queue between a Poisson producer and an
      exponential consumer ([single]);
    - a two-stage tandem with an exponential transfer stage ([tandem]);
    - a credit-window variant in which the producer needs a credit to
      push and pops return credits ([credit]);
    - small data-carrying FIFOs including the two {e injected
      functional issues} used by the verification experiment
      ([fifo_data], [fifo_lossy], [fifo_unordered]): a queue that drops
      on overflow and a queue that re-orders, both caught by
      equivalence checking against [fifo_data].

    Gates: [push], [pop] (stage 2 of the tandem uses [push2]/[pop]).
    The name of the queue process is ["Queue"] in all stochastic
    models, with the current occupancy as its first parameter (see
    {!Measures.occupancy_of_term}). *)

val queue_process_name : string

(** [single ~arrival ~service ~capacity] — producer (rate [arrival],
    then [push]) | queue([capacity]) | consumer ([pop], then rate
    [service]). Together the producer and consumer slots make the
    system an M/M/1/K with [K = capacity + 2] jobs. *)
val single : arrival:float -> service:float -> capacity:int -> Mv_calc.Ast.spec

(** System capacity of {!single} in M/M/1/K terms. *)
val system_capacity : capacity:int -> int

(** [tandem ~arrival ~transfer ~service ~capacity1 ~capacity2] — two
    queues connected by a transfer stage of rate [transfer]. Gates:
    [push], [mid], [pop]. Queue processes: ["Queue"] and ["Queue2"]. *)
val tandem :
  arrival:float ->
  transfer:float ->
  service:float ->
  capacity1:int ->
  capacity2:int ->
  Mv_calc.Ast.spec

(** [credit ~arrival ~service ~capacity ~credits] — the producer
    acquires a [grant] before each [push]; each [pop] emits a [free]
    that returns the credit. [credits <= capacity] keeps the queue from
    overflowing by construction. *)
val credit :
  arrival:float -> service:float -> capacity:int -> credits:int -> Mv_calc.Ast.spec

(** [multi_producer ~arrival0 ~arrival1 ~service ~capacity] — two
    producers with distinct rates contend for one queue; pushes stay
    distinguishable as [push0] / [push1]. Demonstrates (confluent)
    nondeterministic arbitration inside the performance pipeline. *)
val multi_producer :
  arrival0:float ->
  arrival1:float ->
  service:float ->
  capacity:int ->
  Mv_calc.Ast.spec

(** [dual_server ~arrival ~service] — one Poisson source dispatched to
    two {e identical} exponential engines. The two engines are
    symmetric, so stochastic lumping halves the chain - the showcase
    for the minimization step of the performance flow. Gates: [grab]
    (dispatch), [done] (completion). *)
val dual_server : arrival:float -> service:float -> Mv_calc.Ast.spec

(** [spill ~arrival ~service ~refill ~hw_capacity ~spill_capacity] —
    an xSTream queue with memory backing: the hardware FIFO holds
    [hw_capacity] items; overflow goes to a memory spill region of
    [spill_capacity] items and is pulled back by a rate-[refill]
    refiller when the FIFO drains. Consumers only pop from the FIFO, so
    a slow refill path throttles the whole stream. Queue process:
    ["Queue"] with arguments [(hw, spilled)]. *)
val spill :
  arrival:float ->
  service:float ->
  refill:float ->
  hw_capacity:int ->
  spill_capacity:int ->
  Mv_calc.Ast.spec

(** Correct 2-place data FIFO over values [0..1] (untimed). *)
val fifo_data : unit -> Mv_calc.Ast.spec

(** Functional issue 1: accepts pushes when full and drops them. *)
val fifo_lossy : unit -> Mv_calc.Ast.spec

(** Functional issue 2: buffered items can overtake each other. *)
val fifo_unordered : unit -> Mv_calc.Ast.spec
