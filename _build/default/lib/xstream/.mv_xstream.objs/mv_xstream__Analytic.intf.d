lib/xstream/analytic.mli:
