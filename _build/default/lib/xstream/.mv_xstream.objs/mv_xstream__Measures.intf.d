lib/xstream/measures.mli: Mv_calc
