lib/xstream/measures.ml: Array List Mv_calc Mv_core Mv_imc Mv_markov Queues String
