lib/xstream/analytic.ml: Array
