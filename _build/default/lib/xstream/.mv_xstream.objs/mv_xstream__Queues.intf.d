lib/xstream/queues.mli: Mv_calc
