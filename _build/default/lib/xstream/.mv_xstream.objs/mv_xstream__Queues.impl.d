lib/xstream/queues.ml: Mv_calc Printf
