module Lex = Mv_util.Lexing_util
module Mvl = Mv_calc.Parser

exception Parse_error of string

let symbols = "*[" :: Mvl.symbols

let keywords = [ "skip" ]

let rec parse_process lex = parse_par lex

and parse_par lex =
  let left = parse_seq lex in
  if Lex.eat lex "||" then Chp.Par (left, parse_par lex) else left

and parse_seq lex =
  let left = parse_atom lex in
  if Lex.eat lex ";" then Chp.Seq (left, parse_seq lex) else left

and parse_atom lex =
  match Lex.peek lex with
  | Lex.Ident "skip" ->
    ignore (Lex.next lex);
    Chp.Skip
  | Lex.Punct "(" ->
    ignore (Lex.next lex);
    let p = parse_process lex in
    Lex.expect lex ")";
    p
  | Lex.Punct "*[" ->
    ignore (Lex.next lex);
    let body = parse_process lex in
    Lex.expect lex "]";
    Chp.Loop body
  | Lex.Punct "[" ->
    ignore (Lex.next lex);
    let rec branches acc =
      let guard = Mvl.parse_expr_from lex in
      Lex.expect lex "->";
      let body = parse_process lex in
      if Lex.eat lex "|" then branches ((guard, body) :: acc)
      else begin
        Lex.expect lex "]";
        List.rev ((guard, body) :: acc)
      end
    in
    Chp.Select (branches [])
  | Lex.Ident channel when not (List.mem channel keywords) -> (
      ignore (Lex.next lex);
      match Lex.next lex with
      | Lex.Punct "!" -> Chp.Send (channel, Mvl.parse_sum_from lex)
      | Lex.Punct "?" ->
        let x = Lex.expect_ident lex in
        Lex.expect lex ":";
        Chp.Receive (channel, x, Mvl.parse_ty_from lex)
      | _ -> Lex.error lex "expected ! or ? after a channel name"
    )
  | _ -> Lex.error lex "unexpected token in CHP process"

let process_of_string text =
  try
    let lex = Lex.make ~symbols text in
    let p = parse_process lex in
    (match Lex.peek lex with
     | Lex.Eof -> ()
     | _ -> Lex.error lex "trailing input");
    p
  with Lex.Lex_error msg -> raise (Parse_error msg)

let spec_of_string ~prefix ?enums text =
  Chp.spec ~prefix ?enums (process_of_string text)
