(** Concrete CHP syntax.

    {v
    P ::= P "||" P                      (parallel, lowest precedence)
        | P ";" P                       (sequence)
        | "skip"
        | CHAN "!" sum-expr             (send)
        | CHAN "?" NAME ":" ty          (receive)
        | "*[" P "]"                    (repeat forever)
        | "[" g "->" P ("|" g "->" P)* "]"   (guarded selection)
        | "(" P ")"
    v}

    Expressions and types use the MVL grammar
    ({!Mv_calc.Parser}). Comments are [(* ... *)]. Example — a one-slot
    repeater:
    {v *[ in?x:int[0..1] ; out!x ] v} *)

exception Parse_error of string

val process_of_string : string -> Chp.process

(** Parse and translate in one step:
    [spec_of_string ~prefix ?enums text]. *)
val spec_of_string :
  prefix:string -> ?enums:Mv_calc.Ty.enums -> string -> Mv_calc.Ast.spec
