(** CHP: the asynchronous-hardware process language of the flow.

    The FAUST router of the paper was modeled in CHP and translated
    automatically into LOTOS (Salaün-Serwe, IFM 2005); this module
    provides the same pipeline at reduced scale: a CHP process AST and
    a structural translation into MVL. Channels become gates,
    communications become rendezvous, [;] maps to MVL sequential
    composition, [*\[P\]] to guarded recursion, and parallel composition
    synchronizes on shared channels. Probes and shared variables are
    out of scope (the models in this repository do not need them). *)

type process =
  | Skip
  | Send of string * Mv_calc.Expr.t (** [C!e] *)
  | Receive of string * string * Mv_calc.Ty.t (** [C?x:T] *)
  | Seq of process * process
  | Par of process * process (** synchronize on shared channels *)
  | Select of (Mv_calc.Expr.t * process) list (** [\[g1 -> P1 | ...\]] *)
  | Loop of process (** [*\[P\]]: repeat forever *)

(** Raised when a process has no closed translation (currently: a loop
    body capturing a variable bound outside the loop). *)
exception Translation_error of string

(** Channels a process communicates on (sorted, no duplicates). *)
val channels : process -> string list

(** [translate ~prefix p] compiles [p] to an MVL behaviour plus the
    auxiliary process definitions created for loops. Generated process
    names start with [prefix]. *)
val translate : prefix:string -> process -> Mv_calc.Ast.behavior * Mv_calc.Ast.process list

(** [spec ~prefix ?enums p] packages the translation as a complete
    specification with [init] the translated behaviour. *)
val spec : prefix:string -> ?enums:Mv_calc.Ty.enums -> process -> Mv_calc.Ast.spec
