lib/chp/parser.ml: Chp List Mv_calc Mv_util
