lib/chp/parser.mli: Chp Mv_calc
