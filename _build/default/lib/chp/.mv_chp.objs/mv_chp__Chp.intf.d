lib/chp/chp.mli: Mv_calc
