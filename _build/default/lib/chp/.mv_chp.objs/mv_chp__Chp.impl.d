lib/chp/chp.ml: List Mv_calc Printf String
