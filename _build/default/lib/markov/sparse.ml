type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array;
  values : float array;
}

let of_triples ~rows ~cols entries =
  let compare_entry (r1, c1, _) (r2, c2, _) =
    match compare r1 r2 with 0 -> compare c1 c2 | c -> c
  in
  let sorted = List.sort compare_entry entries in
  (* merge duplicates *)
  let merged = ref [] in
  List.iter
    (fun (r, c, v) ->
       if r < 0 || r >= rows || c < 0 || c >= cols then
         invalid_arg "Sparse.of_triples: index out of range";
       match !merged with
       | (r', c', v') :: rest when r' = r && c' = c ->
         merged := (r, c, v +. v') :: rest
       | _ -> merged := (r, c, v) :: !merged)
    sorted;
  let entries = List.rev !merged in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make (max n 1) 0 in
  let values = Array.make (max n 1) 0.0 in
  List.iteri
    (fun i (r, c, v) ->
       row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
       col_idx.(i) <- c;
       values.(i) <- v)
    entries;
  for r = 1 to rows do
    row_ptr.(r) <- row_ptr.(r) + row_ptr.(r - 1)
  done;
  { rows; cols; row_ptr; col_idx; values }

let rows m = m.rows
let cols m = m.cols
let nb_entries m = m.row_ptr.(m.rows)

let get m i j =
  let rec search lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      if m.col_idx.(mid) = j then m.values.(mid)
      else if m.col_idx.(mid) < j then search (mid + 1) hi
      else search lo mid
  in
  search m.row_ptr.(i) m.row_ptr.(i + 1)

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let mul_left m x =
  if Array.length x <> m.rows then invalid_arg "Sparse.mul_left";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        y.(m.col_idx.(k)) <- y.(m.col_idx.(k)) +. (xi *. m.values.(k))
      done
  done;
  y

let mul_right m x =
  if Array.length x <> m.cols then invalid_arg "Sparse.mul_right";
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let transpose m =
  let entries = ref [] in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      entries := (m.col_idx.(k), i, m.values.(k)) :: !entries
    done
  done;
  of_triples ~rows:m.cols ~cols:m.rows !entries

let row_sums m =
  let sums = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      sums.(i) <- sums.(i) +. m.values.(k)
    done
  done;
  sums

let scale m c =
  { m with values = Array.map (fun v -> v *. c) m.values }
