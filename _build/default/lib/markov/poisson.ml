type t = { left : int; right : int; weights : float array }

(* Work outward from the mode m = floor q with un-normalized ratios,
   then normalize; this avoids the underflow of e^{-q} for large q. *)
let weights ~q ~epsilon =
  if q < 0.0 then invalid_arg "Poisson.weights";
  if q = 0.0 then { left = 0; right = 0; weights = [| 1.0 |] }
  else begin
    let mode = int_of_float q in
    (* expand the window until the (normalized) tail mass is below
       epsilon; we over-approximate the needed width via Chebyshev-like
       growth, then trim. *)
    let width = ref (max 4 (int_of_float (6.0 *. sqrt q) + 4)) in
    let rec attempt () =
      let left = max 0 (mode - !width) in
      let right = mode + !width in
      let size = right - left + 1 in
      let w = Array.make size 0.0 in
      w.(mode - left) <- 1.0;
      (* downward from the mode: w_{k-1} = w_k * k / q *)
      for k = mode - left - 1 downto 0 do
        let index = float_of_int (k + left + 1) in
        w.(k) <- w.(k + 1) *. index /. q
      done;
      (* upward from the mode: w_{k+1} = w_k * q / (k+1) *)
      for k = mode - left + 1 to size - 1 do
        let index = float_of_int (k + left) in
        w.(k) <- w.(k - 1) *. q /. index
      done;
      let total = Array.fold_left ( +. ) 0.0 w in
      let boundary_mass = (w.(0) +. w.(size - 1)) /. total in
      if boundary_mass > epsilon /. 2.0 && !width < 1_000_000 then begin
        width := !width * 2;
        attempt ()
      end
      else begin
        Array.iteri (fun i v -> w.(i) <- v /. total) w;
        (* trim negligible tails to keep the transient loop short *)
        let threshold = epsilon /. float_of_int (4 * size) in
        let first = ref 0 and last = ref (size - 1) in
        while !first < size - 1 && w.(!first) < threshold do incr first done;
        while !last > !first && w.(!last) < threshold do decr last done;
        let trimmed = Array.sub w !first (!last - !first + 1) in
        let total' = Array.fold_left ( +. ) 0.0 trimmed in
        Array.iteri (fun i v -> trimmed.(i) <- v /. total') trimmed;
        { left = left + !first; right = left + !last; weights = trimmed }
      end
    in
    attempt ()
  end
