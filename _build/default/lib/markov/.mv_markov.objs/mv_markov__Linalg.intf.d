lib/markov/linalg.mli: Ctmc
