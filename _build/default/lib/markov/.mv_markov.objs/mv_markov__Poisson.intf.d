lib/markov/poisson.mli:
