lib/markov/dtmc.mli: Sparse
