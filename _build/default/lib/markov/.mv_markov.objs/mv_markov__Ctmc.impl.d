lib/markov/ctmc.ml: Array Dtmc Format Hashtbl List Mv_lts Mv_util Option Poisson Sparse
