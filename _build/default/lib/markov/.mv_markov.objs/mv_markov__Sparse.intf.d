lib/markov/sparse.mli:
