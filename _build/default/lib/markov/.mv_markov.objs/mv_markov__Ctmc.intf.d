lib/markov/ctmc.mli: Dtmc Format
