lib/markov/sparse.ml: Array List
