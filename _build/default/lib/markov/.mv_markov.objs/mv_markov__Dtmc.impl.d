lib/markov/dtmc.ml: Array Printf Sparse
