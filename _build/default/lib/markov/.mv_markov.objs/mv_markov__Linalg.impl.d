lib/markov/linalg.ml: Array Ctmc List
