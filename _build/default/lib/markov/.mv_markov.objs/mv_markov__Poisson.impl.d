lib/markov/poisson.ml: Array
