(** Truncated Poisson weights for uniformization (a simplified
    Fox-Glynn computation).

    Transient analysis of a CTMC by uniformization needs the Poisson
    probabilities [e^{-q} q^k / k!] for [k] in a window that captures
    [1 - epsilon] of the mass; computing them by the obvious recurrence
    underflows for large [q], so the weights are accumulated from the
    mode and normalized. *)

type t = {
  left : int; (** first index with non-negligible weight *)
  right : int; (** last index *)
  weights : float array; (** [weights.(k - left)] is Poisson(q)[k] *)
}

(** [weights ~q ~epsilon] for [q >= 0]. The returned weights sum to 1
    up to [epsilon]. For [q = 0] the result is the point mass at 0. *)
val weights : q:float -> epsilon:float -> t
