type result = { component : int array; count : int }

(* Iterative Tarjan. The explicit work stack stores (state, successor
   cursor); successors of each state are materialized once when the
   state is opened, since the [iter_succ] interface is callback-based. *)
let compute ~nb_states ~iter_succ =
  let index = Array.make nb_states (-1) in
  let lowlink = Array.make nb_states 0 in
  let on_stack = Array.make nb_states false in
  let component = Array.make nb_states (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_component = ref 0 in
  let succs = Array.make nb_states [||] in
  let open_state v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    let out = ref [] in
    iter_succ v (fun w -> out := w :: !out);
    succs.(v) <- Array.of_list !out
  in
  let close_state v =
    (* pop the SCC rooted at v *)
    let c = !next_component in
    incr next_component;
    let rec pop () =
      match !stack with
      | [] -> assert false
      | w :: rest ->
        stack := rest;
        on_stack.(w) <- false;
        component.(w) <- c;
        if w <> v then pop ()
    in
    pop ()
  in
  let run root =
    if index.(root) < 0 then begin
      let work = ref [ (root, ref 0) ] in
      open_state root;
      let rec loop () =
        match !work with
        | [] -> ()
        | (v, cursor) :: rest ->
          if !cursor < Array.length succs.(v) then begin
            let w = succs.(v).(!cursor) in
            incr cursor;
            if index.(w) < 0 then begin
              open_state w;
              work := (w, ref 0) :: !work
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w);
            loop ()
          end
          else begin
            if lowlink.(v) = index.(v) then close_state v;
            work := rest;
            (match rest with
             | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
             | [] -> ());
            loop ()
          end
      in
      loop ()
    end
  in
  for s = 0 to nb_states - 1 do run s done;
  { component; count = !next_component }

let bottom ~nb_states ~iter_succ result =
  let is_bottom = Array.make result.count true in
  for s = 0 to nb_states - 1 do
    iter_succ s (fun d ->
        if result.component.(d) <> result.component.(s) then
          is_bottom.(result.component.(s)) <- false)
  done;
  is_bottom
