(** Diagnostic traces (the CADP "exhibitor" role).

    When a safety property fails — a deadlock is reachable, a forbidden
    action can occur — the verification engineer needs a shortest
    witness execution, not just a boolean. Traces are action-label
    sequences from the initial state, computed by breadth-first search
    (hence of minimal length). *)

type t = {
  labels : string list; (** printed labels along the trace, in order *)
  destination : int; (** state reached *)
}

(** [shortest_to_state lts ~goal] — shortest trace reaching a state
    satisfying [goal], or [None] when no such state is reachable. *)
val shortest_to_state : Lts.t -> goal:(int -> bool) -> t option

(** [shortest_to_action lts ~action] — shortest trace whose {e last}
    label satisfies [action] (a predicate on printed labels). *)
val shortest_to_action : Lts.t -> action:(string -> bool) -> t option

(** Shortest trace into a deadlock state. *)
val shortest_to_deadlock : Lts.t -> t option

(** [shortest_to_violation lts ~sat] — shortest trace to a state
    outside the satisfying set of a state formula (helper for
    invariant counterexamples: pass [Mv_mcl.Eval.sat lts invariant]). *)
val shortest_to_violation : Lts.t -> sat:Mv_util.Bitset.t -> t option

(** Render as ["a; b; c"] (["<empty>"] for the empty trace). *)
val to_string : t -> string
