module Bitset = Mv_util.Bitset

type t = { labels : string list; destination : int }

(* BFS with per-state parent pointers; the parent array stores the
   (predecessor, label) pair used to discover each state. *)
let bfs lts =
  let n = Lts.nb_states lts in
  let parent = Array.make n None in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  Bitset.add seen (Lts.initial lts);
  Queue.add (Lts.initial lts) queue;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    Lts.iter_out lts s (fun label dst ->
        if not (Bitset.mem seen dst) then begin
          Bitset.add seen dst;
          parent.(dst) <- Some (s, label);
          Queue.add dst queue
        end)
  done;
  (parent, List.rev !order)

let rebuild lts parent destination =
  let labels = ref [] in
  let rec walk s =
    match parent.(s) with
    | None -> ()
    | Some (pred, label) ->
      labels := Label.name (Lts.labels lts) label :: !labels;
      walk pred
  in
  walk destination;
  { labels = !labels; destination }

let shortest_to_state lts ~goal =
  let parent, order = bfs lts in
  let found = List.find_opt goal order in
  Option.map (rebuild lts parent) found

let shortest_to_action lts ~action =
  (* BFS order gives shortest paths to states; the shortest trace
     ending in a matching action is the shortest path to a source of a
     matching transition, plus that transition. We scan states in BFS
     order and take the first with a matching outgoing transition. *)
  let parent, order = bfs lts in
  let matching s =
    Lts.fold_out lts s
      (fun label dst acc ->
         match acc with
         | Some _ -> acc
         | None ->
           let name = Label.name (Lts.labels lts) label in
           if action name then Some (name, dst) else None)
      None
  in
  let rec scan = function
    | [] -> None
    | s :: rest -> (
        match matching s with
        | Some (name, dst) ->
          let prefix = rebuild lts parent s in
          Some { labels = prefix.labels @ [ name ]; destination = dst }
        | None -> scan rest)
  in
  scan order

let shortest_to_deadlock lts =
  shortest_to_state lts ~goal:(fun s -> Lts.out_degree lts s = 0)

let shortest_to_violation lts ~sat =
  shortest_to_state lts ~goal:(fun s -> not (Bitset.mem sat s))

let to_string t =
  match t.labels with [] -> "<empty>" | labels -> String.concat "; " labels
