(** Interned transition labels.

    Following the CADP convention, the internal action is the
    distinguished label ["i"] (tau) and always has index {!tau}. A label
    is an arbitrary string; gate experiments such as ["PUSH !3"] are
    stored verbatim. *)

type table

(** Index of the internal (tau) action; equal to [0] in every table. *)
val tau : int

(** The printed name of the internal action. *)
val tau_name : string

(** A fresh table containing only tau. *)
val create : unit -> table

(** [intern tbl name] returns the index of [name], creating it if
    needed. Interning ["i"] returns {!tau}. *)
val intern : table -> string -> int

(** [find tbl name] is the existing index of [name], or [None]. *)
val find : table -> string -> int option

(** [name tbl idx] is the printed form of label [idx]. Raises
    [Invalid_argument] on unknown indices. *)
val name : table -> int -> string

(** Number of distinct labels (including tau). *)
val count : table -> int

(** An independent copy (later interning in one table does not affect
    the other). *)
val copy : table -> table

(** [gate label] is the gate part of a label: the prefix before the
    first space (["PUSH !3"] has gate ["PUSH"]). *)
val gate : string -> string
