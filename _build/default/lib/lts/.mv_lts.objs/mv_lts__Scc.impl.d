lib/lts/scc.ml: Array
