lib/lts/aut.ml: Buffer Fun Label Lts Printf String
