lib/lts/lts.mli: Format Label Mv_util
