lib/lts/explore.mli: Lts
