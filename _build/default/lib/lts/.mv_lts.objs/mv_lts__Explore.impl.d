lib/lts/explore.ml: Array Hashtbl Label List Lts Queue
