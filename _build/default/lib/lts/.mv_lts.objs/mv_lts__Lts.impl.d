lib/lts/lts.ml: Array Format Hashtbl Label List Mv_util
