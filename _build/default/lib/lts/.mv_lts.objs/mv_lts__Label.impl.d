lib/lts/label.ml: Array Hashtbl String
