lib/lts/label.mli:
