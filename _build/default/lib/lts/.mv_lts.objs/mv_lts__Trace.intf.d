lib/lts/trace.mli: Lts Mv_util
