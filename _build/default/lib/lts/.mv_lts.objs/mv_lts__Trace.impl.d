lib/lts/trace.ml: Array Label List Lts Mv_util Option Queue String
