lib/lts/aut.mli: Lts
