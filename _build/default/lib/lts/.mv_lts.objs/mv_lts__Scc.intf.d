lib/lts/scc.mli:
