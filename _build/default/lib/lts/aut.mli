(** Aldebaran [.aut] reader and writer (the textual LTS exchange format
    used by CADP).

    Format:
    {v
    des (initial, nb_transitions, nb_states)
    (src, "label", dst)
    ...
    v}
    Labels are written quoted; on input both quoted and bare labels are
    accepted, and ["i"] denotes tau. *)

exception Parse_error of string

(** Serialize to the [.aut] syntax. *)
val to_string : Lts.t -> string

(** Parse from the [.aut] syntax. Raises {!Parse_error} on malformed
    input. *)
val of_string : string -> Lts.t

val write_file : string -> Lts.t -> unit
val read_file : string -> Lts.t
