(** Generic on-the-fly state-space exploration.

    The MVL interpreter, the CHP translation, the case-study model
    builders and the composition engine all enumerate reachable states
    of some abstract machine; this functor turns any [(initial,
    successors)] description into an explicit {!Lts.t} using
    breadth-first search with hashed canonical states. *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array; (** LTS state id -> abstract state *)
  truncated : bool; (** true when [max_states] stopped the search *)
}

exception Too_many_states of int

module Make (S : STATE) : sig
  (** [run ?max_states ?on_truncate ~initial ~successors ()] explores
      breadth-first from [initial]. [successors s] lists the labelled
      moves of [s] (label is a printed name; ["i"] is tau).

      When more than [max_states] (default 1_000_000) states are
      reached: with [on_truncate = `Stop] (default) the frontier is
      abandoned and [truncated] is true (transitions into discovered
      states are kept); with [`Raise] {!Too_many_states} is raised. *)
  val run :
    ?max_states:int ->
    ?on_truncate:[ `Stop | `Raise ] ->
    initial:S.t ->
    successors:(S.t -> (string * S.t) list) ->
    unit ->
    S.t outcome
end
