(** Strongly connected components (iterative Tarjan).

    Used for bottom strongly connected component (BSCC) analysis of
    Markov chains and for tau-cycle compression before branching
    bisimulation. *)

type result = {
  component : int array; (** state -> component id, ids in [0 .. count-1] *)
  count : int;
}

(** [compute ~nb_states ~iter_succ] runs Tarjan's algorithm.
    [iter_succ s f] must apply [f] to every successor of [s].
    Component ids are assigned in reverse topological order: if there is
    an edge from component [a] to component [b <> a] then
    [a > b]. *)
val compute : nb_states:int -> iter_succ:(int -> (int -> unit) -> unit) -> result

(** [bottom ~nb_states ~iter_succ result] flags the bottom components:
    [bottom.(c)] is true iff no edge leaves component [c]. *)
val bottom :
  nb_states:int ->
  iter_succ:(int -> (int -> unit) -> unit) ->
  result ->
  bool array
