type table = {
  by_name : (string, int) Hashtbl.t;
  mutable by_index : string array;
  mutable used : int;
}

(* [by_index] is a growable array managed inline: [used] entries are
   valid. *)

let tau = 0
let tau_name = "i"

let create () =
  let t =
    { by_name = Hashtbl.create 64; by_index = Array.make 16 ""; used = 0 }
  in
  let add name =
    Hashtbl.replace t.by_name name t.used;
    t.by_index.(t.used) <- name;
    t.used <- t.used + 1
  in
  add tau_name;
  t

let intern t name =
  let name = if name = "tau" then tau_name else name in
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None ->
    if t.used = Array.length t.by_index then begin
      let bigger = Array.make (2 * t.used) "" in
      Array.blit t.by_index 0 bigger 0 t.used;
      t.by_index <- bigger
    end;
    let i = t.used in
    Hashtbl.replace t.by_name name i;
    t.by_index.(i) <- name;
    t.used <- t.used + 1;
    i

let find t name =
  let name = if name = "tau" then tau_name else name in
  Hashtbl.find_opt t.by_name name

let name t i =
  if i < 0 || i >= t.used then invalid_arg "Label.name";
  t.by_index.(i)

let count t = t.used

let copy t =
  { by_name = Hashtbl.copy t.by_name;
    by_index = Array.copy t.by_index; used = t.used }

let gate label =
  match String.index_opt label ' ' with
  | None -> label
  | Some i -> String.sub label 0 i
