exception Parse_error of string

let escape label =
  let buffer = Buffer.create (String.length label + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' | '\\' -> Buffer.add_char buffer '\\'; Buffer.add_char buffer c
       | _ -> Buffer.add_char buffer c)
    label;
  Buffer.contents buffer

let to_string lts =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf "des (%d, %d, %d)\n" (Lts.initial lts)
       (Lts.nb_transitions lts) (Lts.nb_states lts));
  let labels = Lts.labels lts in
  Lts.iter_transitions lts (fun src label dst ->
      Buffer.add_string buffer
        (Printf.sprintf "(%d, \"%s\", %d)\n" src
           (escape (Label.name labels label))
           dst));
  Buffer.contents buffer

(* A small cursor-based parser; the grammar is line-oriented but labels
   may contain commas and parentheses, so we scan character by
   character. *)
type cursor = { text : string; mutable pos : int; mutable line : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" cur.line msg))

let rec skip_space cur =
  if cur.pos < String.length cur.text then
    match cur.text.[cur.pos] with
    | ' ' | '\t' | '\r' -> cur.pos <- cur.pos + 1; skip_space cur
    | '\n' -> cur.pos <- cur.pos + 1; cur.line <- cur.line + 1; skip_space cur
    | _ -> ()

let expect_char cur c =
  skip_space cur;
  if cur.pos >= String.length cur.text || cur.text.[cur.pos] <> c then
    fail cur (Printf.sprintf "expected %c" c);
  cur.pos <- cur.pos + 1

let parse_int cur =
  skip_space cur;
  let start = cur.pos in
  while
    cur.pos < String.length cur.text
    && cur.text.[cur.pos] >= '0'
    && cur.text.[cur.pos] <= '9'
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected integer";
  int_of_string (String.sub cur.text start (cur.pos - start))

let parse_label cur =
  skip_space cur;
  if cur.pos >= String.length cur.text then fail cur "expected label";
  if cur.text.[cur.pos] = '"' then begin
    cur.pos <- cur.pos + 1;
    let buffer = Buffer.create 16 in
    let rec scan () =
      if cur.pos >= String.length cur.text then fail cur "unterminated label"
      else
        match cur.text.[cur.pos] with
        | '"' -> cur.pos <- cur.pos + 1
        | '\\' when cur.pos + 1 < String.length cur.text ->
          Buffer.add_char buffer cur.text.[cur.pos + 1];
          cur.pos <- cur.pos + 2;
          scan ()
        | c ->
          Buffer.add_char buffer c;
          cur.pos <- cur.pos + 1;
          scan ()
    in
    scan ();
    Buffer.contents buffer
  end
  else begin
    (* bare label: up to the final comma of the triple, i.e. until a
       comma followed (after spaces) by digits and a closing paren *)
    let buffer = Buffer.create 16 in
    let rec scan () =
      if cur.pos >= String.length cur.text then fail cur "unterminated transition"
      else
        match cur.text.[cur.pos] with
        | ',' -> ()
        | '\n' -> fail cur "unterminated transition"
        | c ->
          Buffer.add_char buffer c;
          cur.pos <- cur.pos + 1;
          scan ()
    in
    scan ();
    String.trim (Buffer.contents buffer)
  end

let of_string text =
  let cur = { text; pos = 0; line = 1 } in
  skip_space cur;
  let header = "des" in
  if
    cur.pos + String.length header > String.length text
    || String.sub text cur.pos (String.length header) <> header
  then fail cur "expected 'des'";
  cur.pos <- cur.pos + String.length header;
  expect_char cur '(';
  let initial = parse_int cur in
  expect_char cur ',';
  let nb_transitions = parse_int cur in
  expect_char cur ',';
  let nb_states = parse_int cur in
  expect_char cur ')';
  let labels = Label.create () in
  let transitions = ref [] in
  for _ = 1 to nb_transitions do
    expect_char cur '(';
    let src = parse_int cur in
    expect_char cur ',';
    let label = parse_label cur in
    expect_char cur ',';
    let dst = parse_int cur in
    expect_char cur ')';
    transitions := (src, Label.intern labels label, dst) :: !transitions
  done;
  Lts.make ~nb_states ~initial ~labels !transitions

let write_file path lts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string lts))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let n = in_channel_length ic in
       let contents = really_input_string ic n in
       of_string contents)
