module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array;
  truncated : bool;
}

exception Too_many_states of int

module Make (S : STATE) = struct
  module Table = Hashtbl.Make (S)

  let run ?(max_states = 1_000_000) ?(on_truncate = `Stop) ~initial ~successors
      () =
    let ids = Table.create 1024 in
    let states = ref [] in
    let nb = ref 0 in
    let truncated = ref false in
    let frontier = Queue.create () in
    let id_of state =
      match Table.find_opt ids state with
      | Some id -> Some id
      | None ->
        if !nb >= max_states then begin
          (match on_truncate with
           | `Raise -> raise (Too_many_states max_states)
           | `Stop -> truncated := true);
          None
        end
        else begin
          let id = !nb in
          incr nb;
          Table.add ids state id;
          states := state :: !states;
          Queue.add (id, state) frontier;
          Some id
        end
    in
    (match id_of initial with
     | Some 0 -> ()
     | Some _ | None -> assert false);
    let labels = Label.create () in
    let transitions = ref [] in
    while not (Queue.is_empty frontier) do
      let src, state = Queue.pop frontier in
      let moves = successors state in
      List.iter
        (fun (label, dst_state) ->
           match id_of dst_state with
           | Some dst ->
             transitions := (src, Label.intern labels label, dst) :: !transitions
           | None -> ())
        moves
    done;
    let states_array = Array.of_list (List.rev !states) in
    let lts = Lts.make ~nb_states:!nb ~initial:0 ~labels !transitions in
    { lts; states = states_array; truncated = !truncated }
end
