lib/sim/des.mli: Mv_imc
