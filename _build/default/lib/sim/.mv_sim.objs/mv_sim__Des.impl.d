lib/sim/des.ml: Array List Mv_imc Mv_lts Mv_util
