(** Disjoint union of two LTSs over a shared label table.

    Equivalence checks run one refinement over the union and compare
    the blocks of the two initial states. *)

(** [disjoint a b] is [(union, offset)] where states of [a] keep their
    ids, states of [b] are shifted by [offset = nb_states a], and
    labels are unified by printed name. The union's initial state is
    [a]'s. *)
val disjoint : Mv_lts.Lts.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t * int
