module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

let build ~drop_inert_tau lts (p : Partition.t) =
  let transitions = ref [] in
  Lts.iter_transitions lts (fun src label dst ->
      let bs = p.block_of.(src) and bd = p.block_of.(dst) in
      let inert = drop_inert_tau && label = Label.tau && bs = bd in
      if not inert then transitions := (bs, label, bd) :: !transitions);
  Lts.make ~nb_states:p.count
    ~initial:p.block_of.(Lts.initial lts)
    ~labels:(Lts.labels lts) !transitions

let strong lts p = build ~drop_inert_tau:false lts p
let weak lts p = build ~drop_inert_tau:true lts p
