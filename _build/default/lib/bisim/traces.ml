module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

(* Tau-closure of a sorted state list, as a sorted list (canonical key
   for the subset construction). *)
let tau_closure lts states =
  let seen = Hashtbl.create 16 in
  let rec visit s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      Lts.iter_out lts s (fun label dst ->
          if label = Label.tau then visit dst)
    end
  in
  List.iter visit states;
  List.sort_uniq compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

(* Visible successors of a state set, grouped by printed label. *)
let visible_successors lts states =
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun s ->
       Lts.iter_out lts s (fun label dst ->
           if label <> Label.tau then begin
             let name = Label.name (Lts.labels lts) label in
             let current =
               Option.value ~default:[] (Hashtbl.find_opt by_label name)
             in
             Hashtbl.replace by_label name (dst :: current)
           end))
    states;
  Hashtbl.fold
    (fun name dsts acc -> (name, tau_closure lts dsts) :: acc)
    by_label []
  |> List.sort compare

let determinize lts =
  let ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let transitions = ref [] in
  let labels = Label.create () in
  let frontier = Queue.create () in
  let nb = ref 0 in
  let id_of set =
    match Hashtbl.find_opt ids set with
    | Some id -> id
    | None ->
      let id = !nb in
      incr nb;
      Hashtbl.replace ids set id;
      Queue.add (id, set) frontier;
      id
  in
  let initial = id_of (tau_closure lts [ Lts.initial lts ]) in
  while not (Queue.is_empty frontier) do
    let src, set = Queue.pop frontier in
    List.iter
      (fun (name, dsts) ->
         transitions := (src, Label.intern labels name, id_of dsts) :: !transitions)
      (visible_successors lts set)
  done;
  Lts.make ~nb_states:!nb ~initial ~labels !transitions

(* Simultaneous subset exploration of [a] against [b]; returns a
   shortest trace [a] can do that [b] cannot, if any. *)
let counterexample a b =
  let seen : (int list * int list, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier = Queue.create () in
  let start =
    (tau_closure a [ Lts.initial a ], tau_closure b [ Lts.initial b ])
  in
  Hashtbl.replace seen start ();
  Queue.add (start, []) frontier;
  let result = ref None in
  while !result = None && not (Queue.is_empty frontier) do
    let (sa, sb), trace_rev = Queue.pop frontier in
    let moves_a = visible_successors a sa in
    let moves_b = visible_successors b sb in
    List.iter
      (fun (name, ta) ->
         if !result = None then
           match List.assoc_opt name moves_b with
           | None -> result := Some (List.rev (name :: trace_rev))
           | Some tb ->
             let key = (ta, tb) in
             if not (Hashtbl.mem seen key) then begin
               Hashtbl.replace seen key ();
               Queue.add (key, name :: trace_rev) frontier
             end)
      moves_a
  done;
  !result

let included a b = counterexample a b = None

let equivalent a b = included a b && included b a
