module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

let disjoint a b =
  let labels = Label.create () in
  let transitions = ref [] in
  let offset = Lts.nb_states a in
  Lts.iter_transitions a (fun s l d ->
      transitions :=
        (s, Label.intern labels (Label.name (Lts.labels a) l), d) :: !transitions);
  Lts.iter_transitions b (fun s l d ->
      transitions :=
        (s + offset, Label.intern labels (Label.name (Lts.labels b) l), d + offset)
        :: !transitions);
  let union =
    Lts.make
      ~nb_states:(Lts.nb_states a + Lts.nb_states b)
      ~initial:(Lts.initial a) ~labels !transitions
  in
  (union, offset)
