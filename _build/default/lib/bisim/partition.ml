type t = { block_of : int array; count : int }

let trivial nb_states = { block_of = Array.make nb_states 0; count = 1 }

let of_classes ~nb_states class_of =
  let dense = Hashtbl.create 64 in
  let block_of = Array.make nb_states 0 in
  let next = ref 0 in
  for s = 0 to nb_states - 1 do
    let c = class_of s in
    let id =
      match Hashtbl.find_opt dense c with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.replace dense c id;
        id
    in
    block_of.(s) <- id
  done;
  { block_of; count = !next }

let refine_step ~nb_states ~signature p =
  let keys : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create 256 in
  let block_of = Array.make nb_states 0 in
  let next = ref 0 in
  for s = 0 to nb_states - 1 do
    let key = (p.block_of.(s), signature p s) in
    let id =
      match Hashtbl.find_opt keys key with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.replace keys key id;
        id
    in
    block_of.(s) <- id
  done;
  { block_of; count = !next }

let refine_until_stable ~nb_states ~signature p =
  let rec loop p =
    let p' = refine_step ~nb_states ~signature p in
    if p'.count = p.count then p' else loop p'
  in
  loop p

let same_block p a b = p.block_of.(a) = p.block_of.(b)
