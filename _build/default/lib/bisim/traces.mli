(** Weak trace (language) semantics: determinization, inclusion and
    equivalence.

    Coarser than branching bisimulation: only the sets of visible
    action sequences matter; internal moves, deadlocks and divergence
    are ignored. Useful as a sanity check ("the implementation performs
    no sequence the specification forbids") when bisimulation is too
    fine. Determinization is the classical subset construction over
    tau-closures, so it can be exponential in the worst case. *)

(** [determinize lts] — a deterministic LTS (no tau, at most one
    successor per label from each state) with the same weak traces. *)
val determinize : Mv_lts.Lts.t -> Mv_lts.Lts.t

(** [included a b] — is every weak trace of [a] a weak trace of [b]? *)
val included : Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool

(** [equivalent a b] — same weak trace sets. *)
val equivalent : Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool

(** [counterexample a b] — a shortest trace of [a] that [b] cannot
    perform ([None] when [included a b]). *)
val counterexample : Mv_lts.Lts.t -> Mv_lts.Lts.t -> string list option
