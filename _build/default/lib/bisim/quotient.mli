(** Building quotient LTSs from partitions. *)

(** [strong lts p] keeps one state per block and one copy of every
    transition between blocks (self-loops included). *)
val strong : Mv_lts.Lts.t -> Partition.t -> Mv_lts.Lts.t

(** [weak lts p] is like {!strong} but drops inert tau transitions
    (tau steps inside one block), as appropriate for branching
    bisimulation quotients. *)
val weak : Mv_lts.Lts.t -> Partition.t -> Mv_lts.Lts.t
