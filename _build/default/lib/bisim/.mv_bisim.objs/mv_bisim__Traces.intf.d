lib/bisim/traces.mli: Mv_lts
