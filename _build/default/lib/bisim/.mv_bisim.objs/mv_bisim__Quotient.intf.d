lib/bisim/quotient.mli: Mv_lts Partition
