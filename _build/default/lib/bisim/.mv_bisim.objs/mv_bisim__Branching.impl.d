lib/bisim/branching.ml: Array Hashtbl List Mv_lts Partition Quotient Union
