lib/bisim/strong.mli: Mv_lts Partition
