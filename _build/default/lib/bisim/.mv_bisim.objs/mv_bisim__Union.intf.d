lib/bisim/union.mli: Mv_lts
