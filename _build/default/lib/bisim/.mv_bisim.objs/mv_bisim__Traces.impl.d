lib/bisim/traces.ml: Hashtbl List Mv_lts Option Queue
