lib/bisim/weak.mli: Mv_lts Partition
