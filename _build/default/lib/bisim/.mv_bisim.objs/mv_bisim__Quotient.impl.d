lib/bisim/quotient.ml: Array Mv_lts Partition
