lib/bisim/union.ml: Mv_lts
