lib/bisim/branching.mli: Mv_lts Partition
