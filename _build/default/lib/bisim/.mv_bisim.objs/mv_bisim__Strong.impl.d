lib/bisim/strong.ml: Array List Mv_lts Partition Quotient Union
