lib/bisim/weak.ml: Array Hashtbl List Mv_lts Partition Quotient Strong Union
