lib/bisim/partition.mli:
