lib/bisim/partition.ml: Array Hashtbl
