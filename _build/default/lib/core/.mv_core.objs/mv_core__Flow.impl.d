lib/core/flow.ml: Array Lazy List Mv_bisim Mv_calc Mv_compose Mv_imc Mv_lts Mv_markov Mv_mcl Printf
