lib/core/svl.ml: Filename Flow Fun List Mv_bisim Mv_compose Mv_lts Mv_mcl Mv_util Printexc Printf String
