lib/core/report.mli:
