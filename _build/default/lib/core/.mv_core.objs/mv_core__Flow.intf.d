lib/core/flow.mli: Lazy Mv_calc Mv_compose Mv_imc Mv_lts Mv_mcl
