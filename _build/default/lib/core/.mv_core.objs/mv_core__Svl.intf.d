lib/core/svl.mli:
