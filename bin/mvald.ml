(* mvald — the Multival verification service daemon.

   Serves mv-serve-v1 requests (generate / minimize / equivalent /
   check / solve / script / lint / cache-stats / metrics /
   metrics-text / logs / version) over a Unix-domain or TCP socket,
   multiplexing them onto one shared Mv_par domain pool behind an
   admission controller. SIGTERM/SIGINT drain gracefully: finish every
   admitted request, answer new ones with a structured [draining]
   error, then exit 0. SIGUSR1 dumps the structured-log flight
   recorder (last 512 events, mv-log-v1) to stderr. *)

open Cmdliner
module Server = Mv_serve.Server
module Proto = Mv_serve.Proto
module Cache = Mv_store.Cache
module Obs = Mv_obs.Obs
module Log = Mv_obs.Log
module Json = Mv_obs.Json

let listen_arg =
  Arg.(
    value
    & opt string "./mvald.sock"
    & info [ "l"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT) or a plain \
           socket path. TCP port 0 picks a free port (printed on startup).")

let workers_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "workers" ] ~docv:"N"
        ~doc:
          "Worker domains executing requests; 0 selects the machine's \
           recommended domain count.")

let queue_arg =
  Arg.(
    value
    & opt int Server.default_queue_capacity
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Maximum queued (admitted but not yet executing) requests; beyond \
           this, requests are rejected immediately with $(b,overloaded).")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "MVAL_CACHE")
        ~doc:"Artifact cache directory shared by all requests.")

let max_frame_arg =
  Arg.(
    value
    & opt int Proto.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:"Reject request frames larger than this.")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:
          "Emit every structured log event as an $(b,mv-log-v1) JSON line on \
           stderr as it happens (the in-memory flight recorder is always \
           on).")

let slow_arg =
  Arg.(
    value
    & opt float Server.default_slow_s
    & info [ "slow-threshold" ] ~docv:"SECONDS"
        ~doc:
          "Log a $(b,slow request) warning for requests whose execution \
           exceeds this many seconds.")

let serve listen workers queue_capacity cache_dir max_frame log_json slow_s =
  match Proto.addr_of_string listen with
  | Error msg ->
    Printf.eprintf "mvald: %s\n%!" msg;
    2
  | Ok requested_addr ->
    (* metrics are always live in the daemon: the [metrics] request is
       part of the protocol, not an opt-in flag *)
    Obs.enable ();
    if log_json then Log.set_sink (Some Log.stderr_sink);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cache = Option.map (fun dir -> Cache.open_dir dir) cache_dir in
    (match cache with
     | Some cache ->
       let swept = Cache.sweep_tmp cache in
       if swept > 0 then
         Printf.eprintf "mvald: swept %d stale temp file(s) from %s\n%!" swept
           (Cache.dir cache)
     | None -> ());
    let workers = if workers <= 0 then Mv_par.Pool.auto () else workers in
    let server =
      Server.create
        { Server.addr = requested_addr; workers; queue_capacity; max_frame;
          cache; slow_s }
    in
    let drain _signal = Server.initiate_drain server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    (* OCaml signal handlers run at safe points, not asynchronously,
       but the recorder lock could still be held by this very thread —
       skip the dump rather than risk a self-deadlock *)
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
            try Printf.eprintf "%s%!" (Json.to_string (Log.dump_json ()))
            with _ -> ()));
    Printf.eprintf "mvald: listening on %s (%d worker(s), queue %d)\n%!"
      (Proto.addr_to_string (Server.addr server))
      workers queue_capacity;
    Server.run server;
    Printf.eprintf "mvald: drained, exiting\n%!";
    0

let cmd =
  let doc = "Multival verification service daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves $(b,mv-serve-v1) requests over a Unix-domain or TCP socket. \
         Point $(b,mval --remote) (or the $(b,MVAL_REMOTE) environment \
         variable) at the listen address to execute verification commands \
         on this daemon — warm requests are answered from the shared \
         artifact cache.";
      `P
        "Observability: $(b,GET /metrics) on the listen socket (or the \
         $(b,metrics-text) op) answers an OpenMetrics text exposition with \
         per-op request-latency histograms; the $(b,logs) op returns the \
         structured-log flight recorder, which SIGUSR1 also dumps to \
         stderr.";
      `P
        "SIGTERM and SIGINT drain gracefully: queued and executing requests \
         finish, new requests receive a structured $(b,draining) error, and \
         the daemon exits 0.";
    ]
  in
  Cmd.v
    (Cmd.info "mvald" ~version:Proto.binary_version ~doc ~man)
    Term.(
      const serve $ listen_arg $ workers_arg $ queue_arg $ cache_arg
      $ max_frame_arg $ log_json_arg $ slow_arg)

let () = exit (Cmd.eval' cmd)
