(* mval: command-line driver for the Multival flow (a CADP-workalike).

   mval generate  model.mvl -o model.aut     state-space generation
   mval minimize  model.aut -e branching     bisimulation minimization
   mval compare   a.aut b.aut -e strong      equivalence check
   mval check     model.mvl -f "<formula>"   mu-calculus model checking
   mval solve     model.mvl -k pop           performance measures
   mval lint      model.mvl                  static analysis
   mval info      model.(mvl|aut|mvb)        model statistics
   mval cache     stats|gc|clear             artifact-cache maintenance *)

module Lts = Mv_lts.Lts
module Aut = Mv_lts.Aut
module Mvb = Mv_store.Mvb
module Cache = Mv_store.Cache
module Flow = Mv_core.Flow
module Budget = Mv_core.Budget
module Json = Mv_obs.Json
module Obs = Mv_obs.Obs
module Log = Mv_obs.Log
module Ops = Mv_serve.Ops
module Proto = Mv_serve.Proto
module Client = Mv_serve.Client

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load an LTS from an .aut or .mvb file, or by generating an MVL
   model (memoized through the cache when one is given). *)
let load_lts ?pool ?max_states ?cache ?budget ?expect path =
  if Filename.check_suffix path ".aut" then Aut.of_string (read_file path)
  else if Filename.check_suffix path ".mvb" then Mvb.read_file path
  else
    Flow.Run.generate
      { Flow.Config.default with pool; max_states; cache; budget; expect }
      (Flow.model_of_text (read_file path))

(* Run [f] with the pool requested by -j: none for -j 1 (fully
   sequential), one worker domain per core for -j 0. Every command
   produces the same output whatever the pool size. *)
let with_jobs jobs f =
  if jobs = 1 then f None
  else
    let domains = if jobs = 0 then Mv_par.Pool.auto () else jobs in
    let pool = Mv_par.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Mv_par.Pool.shutdown pool)
      (fun () -> f (Some pool))

let write_lts output lts =
  match output with
  | None -> print_string (Aut.to_string lts)
  | Some path ->
    if Filename.check_suffix path ".mvb" then Mvb.write_file path lts
    else Aut.write_file path lts;
    Printf.printf "wrote %s (%d states, %d transitions)\n" path
      (Lts.nb_states lts) (Lts.nb_transitions lts)

(* One error table for the whole flow (Ops.classify is also what the
   daemon uses to build structured errors, so a budget or state-bound
   violation prints the same message and exit code locally and under
   --remote). *)
let handle_errors f =
  try f ()
  with exn -> (
    match Ops.classify exn with
    | Some (_, message, code) ->
      prerr_endline message;
      exit code
    | None -> raise exn)

(* Rendered command output (from the shared renderers in Mv_serve.Ops,
   or shipped back by a daemon): print it and adopt its exit code. *)
let print_texts (t : Ops.texts) =
  print_string t.Ops.out;
  prerr_string t.Ops.err;
  if t.Ops.code <> 0 then exit t.Ops.code

(* ---- remote execution (mval --remote ADDR) ---- *)

(* One request id per process (the --request-id choice, or a fresh one
   minted at the first remote call): the client-side span, the
   daemon-side spans and metrics, and the structured log events of a
   run all carry the same id, so the two halves of a --remote run can
   be correlated — and, under --trace, merged into a single Chrome
   trace. Span collection is requested exactly when --trace is on. *)
let remote_request_id = ref None
let remote_collect_spans = ref false

let current_request_id () =
  match !remote_request_id with
  | Some rid -> rid
  | None ->
    let rid = Proto.fresh_request_id () in
    remote_request_id := Some rid;
    rid

let remote_call addr_text ~op ?budget args =
  match Proto.addr_of_string addr_text with
  | Error msg ->
    prerr_endline ("bad --remote address: " ^ msg);
    exit 2
  | Ok addr -> (
    let rid = current_request_id () in
    let trace =
      { Proto.request_id = rid; collect_spans = !remote_collect_spans }
    in
    try
      Obs.with_request rid (fun () ->
          Obs.span "remote.call"
            ~args:[ ("op", Json.String op) ]
            (fun () ->
               Client.with_connection addr (fun c ->
                   let response = Client.call c ~op ?budget ~trace args in
                   (* daemon-side spans land in the local registry
                      under the remote trace lane (pid 2); the at_exit
                      --trace writer then emits one merged trace *)
                   (match response.Proto.trace with
                    | Some spans -> Obs.ingest_spans spans
                    | None -> ());
                   response)))
    with Client.Error msg ->
      prerr_endline ("remote: " ^ msg);
      exit 70)

let remote_result (response : Proto.response) =
  match response.Proto.outcome with
  | Ok result -> result
  | Error { Proto.kind; message } ->
    prerr_endline message;
    exit (Ops.exit_code_of_kind kind)

let finish_remote response = print_texts (Ops.texts_of_json (remote_result response))

(* A model file as a protocol payload: MVL sources travel as text and
   are generated daemon-side (hitting its cache); .aut travels
   verbatim; .mvb is converted to .aut text (the wire format is JSON,
   not binary) — the round-trip is exact. *)
let model_payload path =
  let kind, text =
    if Filename.check_suffix path ".aut" then ("aut", read_file path)
    else if Filename.check_suffix path ".mvb" then
      ("aut", Aut.to_string (Mvb.read_file path))
    else ("mvl", read_file path)
  in
  Json.Obj [ ("kind", Json.String kind); ("text", Json.String text) ]

(* The daemon answers generate/minimize with the .aut artifact text;
   writing it back through the same Aut/Mvb writers a local run uses
   keeps the on-disk result byte-identical. *)
let remote_write_lts output result =
  match Json.member "artifact" result with
  | Some (Json.String artifact) -> (
    match output with
    | None -> print_string artifact
    | Some path ->
      let lts = Aut.of_string artifact in
      if Filename.check_suffix path ".mvb" then Mvb.write_file path lts
      else Aut.write_file path lts;
      Printf.printf "wrote %s (%d states, %d transitions)\n" path
        (Lts.nb_states lts) (Lts.nb_transitions lts))
  | _ ->
    prerr_endline "remote: malformed response (missing artifact)";
    exit 70

let int_result name result =
  match Json.member name result with
  | Some (Json.Int n) -> n
  | _ ->
    prerr_endline (Printf.sprintf "remote: malformed response (missing %s)" name);
    exit 70

module Lint = Mv_lint.Lint
module Diagnostic = Mv_lint.Diagnostic

(* Pre-flight lint of the .mvl sources a command is about to explore.
   Warnings are reported but do not block; lint errors abort (they
   would fail during exploration anyway, only later and with less
   context). --no-lint skips the pass entirely. *)
let lint_gate ~no_lint paths =
  if not no_lint then
    List.iter
      (fun path ->
         if Filename.check_suffix path ".mvl" then begin
           let ds = Lint.check_text (read_file path) in
           List.iter
             (fun d -> prerr_endline (Diagnostic.render ~file:path d))
             ds;
           if Lint.has_errors ds then begin
             prerr_endline
               (Printf.sprintf
                  "%s: lint found errors (use --no-lint to bypass)" path);
             exit 2
           end
         end)
      paths

(* Telemetry wiring shared by the flow commands. The exporters run
   from [at_exit] because several commands terminate via [exit]
   mid-run (compare/check/script encode their verdict in the exit
   code); registering the writer up front guarantees the files appear
   whenever the flags were given, whatever the exit path. *)
let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Mv_obs.Json.to_string json))

let setup_obs metrics trace progress log_json request_id =
  if metrics <> None || trace <> None then Obs.enable ();
  if trace <> None then remote_collect_spans := true;
  if log_json then Log.set_sink (Some Log.stderr_sink);
  (match request_id with
   | Some rid ->
     remote_request_id := Some rid;
     Obs.set_request (Some rid)
   | None -> ());
  if progress then Obs.set_progress true;
  if metrics <> None || trace <> None || progress then
    Stdlib.at_exit (fun () ->
        Obs.progress_end ();
        (match metrics with
         | Some path -> write_json path (Obs.metrics_json ())
         | None -> ());
        (match trace with
         | Some path -> write_json path (Obs.trace_json ())
         | None -> ());
        if metrics <> None || trace <> None then
          Mv_core.Report.headline ~title:"telemetry" (Obs.headlines ()))

open Cmdliner

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record counters, histograms, convergence series and phase \
           timings, and write them to $(docv) as JSON on exit (schema \
           $(b,mv-obs-metrics-v1); see doc/observability.md).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file of the flow's spans to \
           $(docv) on exit (load it in chrome://tracing or \
           ui.perfetto.dev).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Repaint a live status line on stderr while exploring, \
           refining, solving and simulating.")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:
          "Stream every structured log event to stderr as one JSON \
           line (schema $(b,mv-log-v1); see doc/observability.md) as \
           it happens.")

let request_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "request-id" ] ~docv:"ID"
        ~doc:
          "Tag this run's telemetry — spans, log events, and \
           $(b,--remote) requests — with $(docv) instead of a \
           generated id, so client- and daemon-side records \
           correlate.")

let obs_term =
  Term.(
    const setup_obs $ metrics_arg $ trace_arg $ progress_arg $ log_json_arg
    $ request_id_arg)

let model_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MODEL"
        ~doc:"MVL model (.mvl), Aldebaran LTS (.aut) or binary LTS (.mvb).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Output file, .aut or .mvb by extension (default: .aut on stdout).")

let max_states_arg =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "max-states" ] ~docv:"N" ~doc:"State-space generation bound.")

let equivalence_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("strong", Flow.Strong); ("branching", Flow.Branching);
             ("divbranching", Flow.Divbranching); ("weak", Flow.Weak);
             ("traces", Flow.Traces) ])
        Flow.Branching
    & info [ "e"; "equivalence" ] ~docv:"EQ"
        ~doc:"Equivalence: $(b,strong), $(b,branching), \
              $(b,divbranching) (divergence-sensitive), $(b,weak) or \
              $(b,traces).")

let hide_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "hide" ] ~docv:"GATES" ~doc:"Comma-separated gates to hide first.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (generation, \
           refinement, solving): $(b,1) is fully sequential (default), \
           $(b,0) uses one domain per core. The output is identical \
           for every N.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:
          "Skip the static-analysis pass that normally runs on MVL \
           sources before exploration (see $(b,mval lint)).")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "MVAL_CACHE")
        ~doc:
          "Content-addressed artifact cache directory (created if \
           missing). Generation, reduction and lumping results are \
           memoized there and reused across runs; maintain it with \
           $(b,mval cache). See doc/store.md.")

let open_cache = Option.map (fun dir -> Cache.open_dir dir)

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~env:(Cmd.Env.info "MVAL_REMOTE")
        ~doc:
          "Execute on a running $(b,mvald) daemon at $(docv) \
           ($(b,unix:PATH), $(b,tcp:HOST:PORT) or a plain socket path) \
           instead of locally. The output is byte-identical to a local \
           run; warm requests are answered from the daemon's shared \
           cache.")

let budget_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-states" ] ~docv:"N"
        ~doc:
          "Abort (exit 5) as soon as any exploration discovers more \
           than $(docv) states. Unlike $(b,--max-states) this is a \
           request budget, checked at every flow step; under \
           $(b,--remote) it is enforced by the daemon.")

let budget_wall_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-wall" ] ~docv:"SECONDS"
        ~doc:
          "Abort (exit 5) once the command has run for more than \
           $(docv) seconds of wall time (checked cooperatively at flow \
           steps, so slightly more work than the budget may happen). \
           Under $(b,--remote) the daemon enforces it per request.")

let budget_term =
  Term.(
    const (fun states wall -> (states, wall))
    $ budget_states_arg $ budget_wall_arg)

let budget_spec (states, wall) =
  if states = None && wall = None then None
  else Some { Proto.max_states = states; wall_s = wall }

let local_budget (states, wall) =
  if states = None && wall = None then None
  else Some (Budget.create ?max_states:states ?wall_s:wall ())

let strings_json items = Json.List (List.map (fun s -> Json.String s) items)

(* ---- out-of-core / planning options ---- *)

let ooc_arg =
  Arg.(
    value & flag
    & info [ "out-of-core" ]
        ~doc:
          "Bounded-RAM pipeline over .mvb files: $(b,generate) streams \
           transitions to the output during exploration (the seen set \
           spills to sorted runs on disk past the memory budget) and \
           $(b,minimize) refines over the mmap'd input without loading \
           it. Requires .mvb paths ($(b,-o) for generate; input and \
           $(b,-o) for minimize). The bytes produced are identical to \
           the in-RAM pipeline's.")

let mem_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget" ] ~docv:"MB"
        ~doc:
          "RAM target in MiB for $(b,--out-of-core): half funds the \
           hot (in-RAM) part of the seen set, the rest covers the \
           bloom filter and the current frontier (default: 128 MiB \
           hot).")

let scratch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scratch-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for $(b,--out-of-core) spill runs and mmap \
           scratch (default: the output file's directory). Scratch is \
           removed on exit, also on failure.")

let expect_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "expect" ] ~docv:"N"
        ~doc:
          "Anticipated reachable-state count: pre-sizes the \
           exploration tables (and the out-of-core bloom filter) so \
           large runs skip rehash churn. A hint — never changes any \
           result.")

let compositional_arg =
  Arg.(
    value & flag
    & info [ "compositional" ]
        ~doc:
          "Split the model's top-level parallel composition, generate \
           each component separately, minimize before composing, and \
           combine in a planned order ($(b,--plan)). The result is \
           branching-equivalent to direct generation; the peak \
           intermediate size can be exponentially smaller.")

let plan_arg =
  Arg.(
    value
    & opt (enum [ ("naive", `Naive); ("greedy", `Greedy) ]) `Greedy
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Composition order for $(b,--compositional): $(b,naive) \
           composes components left to right, $(b,greedy) (default) \
           repeatedly composes the pair with the smallest estimated \
           product (state counts scaled down by shared \
           synchronization gates).")

(* ---- generate ---- *)

let generate_cmd =
  let run () model output max_states hide jobs no_lint cache remote budget ooc
      mem_budget scratch expect compositional plan =
    handle_errors (fun () ->
        lint_gate ~no_lint [ model ];
        match remote with
        | Some addr ->
          let result =
            remote_result
              (remote_call addr ~op:"generate" ?budget:(budget_spec budget)
                 (Json.Obj
                    [
                      ("model", model_payload model);
                      ("max_states", Json.Int max_states);
                      ("hide", strings_json hide);
                    ]))
          in
          remote_write_lts output result
        | None ->
          let cache = open_cache cache in
          with_jobs jobs (fun pool ->
              let config =
                { Flow.Config.default with
                  pool;
                  max_states = Some max_states;
                  cache;
                  budget = local_budget budget;
                  out_of_core = ooc;
                  mem_budget_mb = mem_budget;
                  scratch_dir = scratch;
                  expect;
                  compose_plan = plan;
                }
              in
              if ooc then begin
                let out =
                  match output with
                  | Some path when Filename.check_suffix path ".mvb" -> path
                  | _ ->
                    prerr_endline "--out-of-core needs -o FILE.mvb";
                    exit 2
                in
                if hide <> [] || compositional then begin
                  prerr_endline
                    "--out-of-core generation streams the plain state \
                     space; it cannot be combined with --hide or \
                     --compositional";
                  exit 2
                end;
                let spec = Flow.model_of_text (read_file model) in
                let o = Flow.Run.generate_mvb config spec ~out in
                Printf.printf "wrote %s (%d states, %d transitions)\n" out
                  o.Mv_lts.Explore.ooc_states o.Mv_lts.Explore.ooc_transitions
              end
              else if compositional then begin
                let spec = Flow.model_of_text (read_file model) in
                let report = Flow.Run.generate_compositional config spec in
                Printf.eprintf "compositional: %d steps, peak %d states\n"
                  (List.length report.Mv_compose.Net.steps)
                  report.Mv_compose.Net.peak_states;
                let lts = report.Mv_compose.Net.result in
                let lts =
                  if hide = [] then lts else Lts.hide lts ~gates:hide
                in
                write_lts output lts
              end
              else
                let lts =
                  load_lts ?pool ~max_states ?cache
                    ?budget:(local_budget budget) ?expect model
                in
                let lts =
                  if hide = [] then lts else Lts.hide lts ~gates:hide
                in
                write_lts output lts))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the state space of an MVL model")
    Term.(
      const run $ obs_term $ model_arg $ output_arg $ max_states_arg $ hide_arg
      $ jobs_arg $ no_lint_arg $ cache_arg $ remote_arg $ budget_term $ ooc_arg
      $ mem_budget_arg $ scratch_arg $ expect_arg $ compositional_arg
      $ plan_arg)

(* ---- minimize ---- *)

let minimize_cmd =
  let run () model output max_states equivalence hide jobs no_lint cache remote
      budget ooc mem_budget scratch expect =
    handle_errors (fun () ->
        lint_gate ~no_lint [ model ];
        match remote with
        | Some addr ->
          let result =
            remote_result
              (remote_call addr ~op:"minimize" ?budget:(budget_spec budget)
                 (Json.Obj
                    [
                      ("model", model_payload model);
                      ( "equivalence",
                        Json.String (Flow.equivalence_name equivalence) );
                      ("max_states", Json.Int max_states);
                      ("hide", strings_json hide);
                    ]))
          in
          prerr_string
            (Ops.minimize_note
               ~before:(int_result "states_before" result)
               ~after:(int_result "states" result));
          remote_write_lts output result
        | None ->
          let cache = open_cache cache in
          with_jobs jobs (fun pool ->
              let budget = local_budget budget in
              if ooc then begin
                if not (Filename.check_suffix model ".mvb") then begin
                  prerr_endline "--out-of-core minimization reads a .mvb file";
                  exit 2
                end;
                let dst =
                  match output with
                  | Some path when Filename.check_suffix path ".mvb" -> path
                  | _ ->
                    prerr_endline "--out-of-core needs -o FILE.mvb";
                    exit 2
                in
                if hide <> [] then begin
                  prerr_endline "--out-of-core does not support --hide";
                  exit 2
                end;
                let config =
                  { Flow.Config.default with
                    pool;
                    cache;
                    budget;
                    out_of_core = true;
                    mem_budget_mb = mem_budget;
                    scratch_dir = scratch;
                  }
                in
                let before = (Mvb.stats model).Mvb.s_nb_states in
                let minimized =
                  Flow.Run.minimize_mvb config equivalence ~src:model ~dst
                in
                prerr_string
                  (Ops.minimize_note ~before ~after:(Lts.nb_states minimized));
                Printf.printf "wrote %s (%d states, %d transitions)\n" dst
                  (Lts.nb_states minimized) (Lts.nb_transitions minimized)
              end
              else
                let lts =
                  load_lts ?pool ~max_states ?cache ?budget ?expect model
                in
                let lts =
                  if hide = [] then lts else Lts.hide lts ~gates:hide
                in
                let minimized =
                  Flow.Run.minimize
                    { Flow.Config.default with pool; cache; budget }
                    equivalence lts
                in
                prerr_string
                  (Ops.minimize_note ~before:(Lts.nb_states lts)
                     ~after:(Lts.nb_states minimized));
                write_lts output minimized))
  in
  Cmd.v
    (Cmd.info "minimize" ~doc:"Minimize modulo strong or branching bisimulation")
    Term.(
      const run $ obs_term $ model_arg $ output_arg $ max_states_arg
      $ equivalence_arg $ hide_arg $ jobs_arg $ no_lint_arg $ cache_arg
      $ remote_arg $ budget_term $ ooc_arg $ mem_budget_arg $ scratch_arg
      $ expect_arg)

(* ---- compare ---- *)

let compare_cmd =
  let second_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"MODEL2" ~doc:"Second model.")
  in
  let run () a b max_states equivalence jobs cache remote budget =
    handle_errors (fun () ->
        match remote with
        | Some addr ->
          finish_remote
            (remote_call addr ~op:"equivalent" ?budget:(budget_spec budget)
               (Json.Obj
                  [
                    ("a", model_payload a);
                    ("b", model_payload b);
                    ( "equivalence",
                      Json.String (Flow.equivalence_name equivalence) );
                    ("max_states", Json.Int max_states);
                  ]))
        | None ->
          let cache = open_cache cache in
          with_jobs jobs (fun pool ->
              let budget = local_budget budget in
              let la = load_lts ?pool ~max_states ?cache ?budget a
              and lb = load_lts ?pool ~max_states ?cache ?budget b in
              print_texts
                (Ops.compare_texts
                   { Flow.Config.default with pool; budget }
                   equivalence la lb)))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Check two models for bisimulation equivalence")
    Term.(
      const run $ obs_term $ model_arg $ second_arg $ max_states_arg
      $ equivalence_arg $ jobs_arg $ cache_arg $ remote_arg $ budget_term)

(* ---- check ---- *)

let check_cmd =
  let formulas_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "f"; "formula" ] ~docv:"FORMULA"
          ~doc:"Mu-calculus formula (repeatable). See the mu-calculus grammar \
                in lib/mcl/parser.mli.")
  in
  let deadlock_arg =
    Arg.(value & flag & info [ "deadlock" ] ~doc:"Also check deadlock freedom.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("fixpoint", `Fixpoint); ("bes", `Bes) ]) `Fixpoint
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Evaluation engine: direct $(b,fixpoint) iteration or a \
             $(b,bes) (boolean equation system) translation.")
  in
  let run () model max_states formulas deadlock engine no_lint remote budget =
    handle_errors (fun () ->
        lint_gate ~no_lint [ model ];
        match remote with
        | Some addr ->
          finish_remote
            (remote_call addr ~op:"check" ?budget:(budget_spec budget)
               (Json.Obj
                  [
                    ("model", model_payload model);
                    ("max_states", Json.Int max_states);
                    ("formulas", strings_json formulas);
                    ("deadlock", Json.Bool deadlock);
                    ( "engine",
                      Json.String
                        (match engine with
                         | `Fixpoint -> "fixpoint"
                         | `Bes -> "bes") );
                  ]))
        | None ->
          let lts =
            load_lts ~max_states ?budget:(local_budget budget) model
          in
          print_texts (Ops.check_texts ~engine ~deadlock ~formulas lts))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Model-check mu-calculus formulas")
    Term.(
      const run $ obs_term $ model_arg $ max_states_arg $ formulas_arg
      $ deadlock_arg $ engine_arg $ no_lint_arg $ remote_arg $ budget_term)

(* ---- solve ---- *)

let solve_cmd =
  let keep_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "k"; "keep" ] ~docv:"GATES"
          ~doc:"Gates kept visible for throughput queries (comma-separated).")
  in
  let first_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "time-to-first" ] ~docv:"GATE"
          ~doc:"Also report the mean time to the first occurrence of GATE.")
  in
  let scheduler_arg =
    Arg.(
      value
      & opt (enum [ ("uniform", Mv_imc.To_ctmc.Uniform); ("fail", Mv_imc.To_ctmc.Fail) ])
          Mv_imc.To_ctmc.Uniform
      & info [ "scheduler" ] ~docv:"S"
          ~doc:
            "Resolution of nondeterministic immediate choices: \
             $(b,uniform) (default) or $(b,fail) (reject, as CADP's \
             solvers do).")
  in
  let method_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "method" ] ~docv:"M"
          ~doc:
            "Steady-state iteration: $(b,gs) (colored Gauss-Seidel, the \
             default — fewest sweeps, parallel under $(b,-j) with \
             bit-identical results), $(b,sor) (over-relaxed Gauss-Seidel), \
             or $(b,jacobi) (damped; kept as a cross-check). All methods \
             agree within the solver tolerance.")
  in
  let run () model max_states keep first scheduler method_ jobs no_lint cache
      remote budget =
    handle_errors (fun () ->
        let solve_method =
          match method_ with
          | None -> None
          | Some name -> (
            match Mv_kern.Solver.method_of_name name with
            | Some m -> Some m
            | None ->
              prerr_endline
                (Diagnostic.render
                   {
                     Diagnostic.code = "CLI001";
                     severity = Diagnostic.Error;
                     line = None;
                     message =
                       Printf.sprintf
                         "unknown solve method %S (expected jacobi, gs, \
                          gauss-seidel or sor)"
                         name;
                   });
              exit 2)
        in
        lint_gate ~no_lint [ model ];
        match remote with
        | Some addr ->
          finish_remote
            (remote_call addr ~op:"solve" ?budget:(budget_spec budget)
               (Json.Obj
                  ([
                     ("model", Json.String (read_file model));
                     ("max_states", Json.Int max_states);
                     ("keep", strings_json keep);
                     ( "scheduler",
                       Json.String
                         (match scheduler with
                          | Mv_imc.To_ctmc.Uniform -> "uniform"
                          | Mv_imc.To_ctmc.Fail -> "fail"
                          (* not constructible from the CLI enum *)
                          | Mv_imc.To_ctmc.Deterministic _ -> assert false) );
                   ]
                   @ (match method_ with
                      | Some m -> [ ("method", Json.String m) ]
                      | None -> [])
                   @
                   match first with
                   | Some gate -> [ ("time_to_first", Json.String gate) ]
                   | None -> [])))
        | None ->
          let cache = open_cache cache in
          with_jobs jobs (fun pool ->
              let spec = Flow.model_of_text (read_file model) in
              let config =
                {
                  Flow.Config.default with
                  pool;
                  max_states = Some max_states;
                  keep;
                  scheduler;
                  cache;
                  solve_method;
                  budget = local_budget budget;
                }
              in
              print_texts (Ops.solve_texts config ~first spec)))
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run the performance pipeline: IMC, lumping, CTMC, throughputs")
    Term.(
      const run $ obs_term $ model_arg $ max_states_arg $ keep_arg $ first_arg
      $ scheduler_arg $ method_arg $ jobs_arg $ no_lint_arg $ cache_arg
      $ remote_arg $ budget_term)

(* ---- translate ---- *)

let translate_cmd =
  let prefix_arg =
    Arg.(
      value
      & opt string "chp"
      & info [ "prefix" ] ~docv:"PREFIX"
          ~doc:"Name prefix for processes generated from CHP loops.")
  in
  let run model prefix =
    handle_errors (fun () ->
        let spec =
          Mv_chp.Parser.spec_of_string ~prefix (read_file model)
        in
        print_string (Mv_calc.Ast.spec_to_string spec))
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Translate a CHP process (.chp) into MVL concrete syntax")
    Term.(const run $ model_arg $ prefix_arg)

(* ---- trace ---- *)

let trace_cmd =
  let deadlock_arg =
    Arg.(value & flag & info [ "deadlock" ] ~doc:"Witness trace to a deadlock.")
  in
  let action_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "action" ] ~docv:"GATE"
          ~doc:"Witness trace ending in an action on GATE.")
  in
  let run model max_states deadlock action =
    handle_errors (fun () ->
        let lts = load_lts ~max_states model in
        let report kind = function
          | None -> Printf.printf "%-30s unreachable\n" kind
          | Some t ->
            Printf.printf "%-30s %s\n" kind (Mv_lts.Trace.to_string t)
        in
        if not deadlock && action = None then begin
          prerr_endline "nothing to search (use --deadlock or --action)";
          exit 2
        end;
        if deadlock then
          report "shortest deadlock trace:" (Mv_lts.Trace.shortest_to_deadlock lts);
        match action with
        | None -> ()
        | Some gate ->
          report
            (Printf.sprintf "shortest trace to %s:" gate)
            (Mv_lts.Trace.shortest_to_action lts
               ~action:(fun name -> Mv_lts.Label.gate name = gate)))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Exhibit shortest witness traces")
    Term.(const run $ model_arg $ max_states_arg $ deadlock_arg $ action_arg)

(* ---- script ---- *)

let script_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the step results as JSON (schema $(b,mv-svl-steps-v1)) \
             instead of the human-readable table.")
  in
  let run () model no_lint cache json remote =
    handle_errors (fun () ->
        (* classified to "script parse error: ..." (exit 2) when the
           script itself does not parse *)
        let sources = Mv_core.Svl.model_sources_of_file model in
        lint_gate ~no_lint sources;
        match remote with
        | Some addr ->
          (* ship the referenced .mvl sources along (flat names only —
             the daemon materializes them in a scratch directory) *)
          let files =
            List.map
              (fun path -> (Filename.basename path, Json.String (read_file path)))
              sources
          in
          finish_remote
            (remote_call addr ~op:"script"
               (Json.Obj
                  [
                    ("script", Json.String (read_file model));
                    ("files", Json.Obj files);
                    ("json", Json.Bool json);
                  ]))
        | None ->
          let cache = open_cache cache in
          print_texts
            (Ops.script_texts ?cache
               ~dir:(Filename.dirname model)
               ~json (read_file model)))
  in
  Cmd.v
    (Cmd.info "script" ~doc:"Run an SVL-style verification script")
    Term.(
      const run $ obs_term $ model_arg $ no_lint_arg $ cache_arg $ json_arg
      $ remote_arg)

(* ---- simulate ---- *)

let simulate_cmd =
  let steps_arg =
    Arg.(
      value & opt int 20
      & info [ "steps" ] ~docv:"N" ~doc:"Number of transitions to walk.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (runs are reproducible).")
  in
  let timed_arg =
    Arg.(
      value & flag
      & info [ "timed" ]
          ~doc:
            "Interpret 'rate' labels as exponential delays and print \
             timestamps (stochastic simulation of the underlying IMC).")
  in
  let replications_arg =
    Arg.(
      value & opt int 0
      & info [ "replications" ] ~docv:"N"
          ~doc:
            "Monte-Carlo mode: instead of printing one random walk, run \
             $(docv) independent replications of a throughput \
             estimation (requires $(b,--action)) and report their mean \
             and 95% confidence half-width. Replications draw from RNG \
             streams split from $(b,--seed), so the statistics are \
             identical for every $(b,-j).")
  in
  let action_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "action" ] ~docv:"GATE"
          ~doc:"Visible action whose throughput the replications estimate.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "horizon" ] ~docv:"T"
          ~doc:"Simulated duration of each replication (default 1000).")
  in
  let run () model max_states steps seed timed replications action horizon
      jobs =
    handle_errors (fun () ->
        if replications > 0 then begin
          let action =
            match action with
            | Some a -> a
            | None ->
              prerr_endline "--replications requires --action GATE";
              exit 2
          in
          with_jobs jobs (fun pool ->
              let lts = load_lts ?pool ~max_states model in
              let imc = Mv_imc.Imc.of_lts lts in
              let stats =
                Mv_sim.Des.throughput_stats ?pool imc ~action ~horizon
                  ~replications ~seed:(Int64.of_int seed)
              in
              Obs.progress_end ();
              let half_width =
                if stats.Mv_sim.Des.replications < 2 then 0.0
                else
                  1.96 *. stats.Mv_sim.Des.stddev
                  /. sqrt (float_of_int stats.Mv_sim.Des.replications)
              in
              Printf.printf
                "throughput %-20s %.6g +/- %.3g (%d replication(s), \
                 horizon %g)\n"
                action stats.Mv_sim.Des.mean half_width
                stats.Mv_sim.Des.replications horizon)
        end
        else begin
        let lts = load_lts ~max_states model in
        let rng = Mv_util.Rng.create (Int64.of_int seed) in
        if timed then begin
          let imc = Mv_imc.Imc.of_lts lts in
          let clock = ref 0.0 in
          let state = ref (Mv_imc.Imc.initial imc) in
          let labels = Mv_imc.Imc.labels imc in
          (try
             for _ = 1 to steps do
               match Mv_imc.Imc.interactive_out imc !state with
               | (label, dst) :: _ as choices ->
                 let label, dst =
                   if List.length choices = 1 then (label, dst)
                   else List.nth choices (Mv_util.Rng.int rng (List.length choices))
                 in
                 Printf.printf "%10.4f  %s\n" !clock
                   (Mv_lts.Label.name labels label);
                 state := dst
               | [] ->
                 (match Mv_imc.Imc.markovian_out imc !state with
                  | [] ->
                    Printf.printf "%10.4f  <absorbing>\n" !clock;
                    raise Exit
                  | markovian ->
                    let total =
                      List.fold_left (fun acc (r, _) -> acc +. r) 0.0 markovian
                    in
                    clock := !clock +. Mv_util.Rng.exponential rng ~rate:total;
                    let u = Mv_util.Rng.float rng *. total in
                    let rec pick acc = function
                      | [] -> assert false
                      | [ (_, d) ] -> d
                      | (r, d) :: rest ->
                        if u < acc +. r then d else pick (acc +. r) rest
                    in
                    state := pick 0.0 markovian;
                    Printf.printf "%10.4f  <delay>\n" !clock)
             done
           with Exit -> ())
        end
        else begin
          let state = ref (Lts.initial lts) in
          (try
             for i = 1 to steps do
               let moves =
                 Lts.fold_out lts !state (fun l d acc -> (l, d) :: acc) []
               in
               match moves with
               | [] ->
                 Printf.printf "%4d  <deadlock>\n" i;
                 raise Exit
               | _ ->
                 let label, dst =
                   List.nth moves (Mv_util.Rng.int rng (List.length moves))
                 in
                 Printf.printf "%4d  %s\n" i
                   (Mv_lts.Label.name (Lts.labels lts) label);
                 state := dst
             done
           with Exit -> ())
        end
        end)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Random-walk simulation of a model")
    Term.(
      const run $ obs_term $ model_arg $ max_states_arg $ steps_arg $ seed_arg
      $ timed_arg $ replications_arg $ action_arg $ horizon_arg $ jobs_arg)

(* ---- lint ---- *)

let lint_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print diagnostics as a JSON array of objects with fields \
             $(b,code), $(b,severity), $(b,line) and $(b,message).")
  in
  let warn_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "W" ] ~docv:"SPEC"
          ~doc:
            "Diagnostic policy, repeatable. $(b,-W CODE=LEVEL) \
             reclassifies a rule (LEVEL is $(b,error), $(b,warning), \
             $(b,info) or $(b,ignore)), e.g. $(b,-W MVL005=ignore). \
             The bare spec $(b,-Werror) makes any warning fail the run \
             with exit code 1.")
  in
  let max_phases_arg =
    Arg.(
      value
      & opt int Lint.default_config.Lint.max_phase_product
      & info [ "max-phases" ] ~docv:"N"
          ~doc:
            "Threshold for MVL012: the estimated number of phase-type \
             combinations across the parallel components of init above \
             which a warning is emitted.")
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on a clean specification (no errors; no \
                            warnings when $(b,-Werror) is set).";
      Cmd.Exit.info 1 ~doc:"when $(b,-Werror) is set and warnings were \
                            reported.";
      Cmd.Exit.info 2 ~doc:"when errors were reported (or the model \
                            does not parse).";
    ]
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Static analysis of an MVL specification: every typechecker \
         problem plus call-graph, gate-usage, guard/interval and \
         stochastic well-formedness diagnostics, each with a stable \
         rule code and a source line. The same pass runs automatically \
         before $(b,generate), $(b,minimize), $(b,check), $(b,solve) \
         and $(b,script) (disable with $(b,--no-lint)); only \
         error-severity diagnostics block those commands.";
      `S "RULES";
      `Pre
        (String.concat "\n"
           (List.map
              (fun r ->
                 Printf.sprintf "%s  %-7s  %s" r.Lint.code
                   (Diagnostic.severity_name r.Lint.default_severity)
                   r.Lint.title)
              Lint.rules));
      `P "The full catalogue, with examples and fixes, is in doc/lint.md.";
    ]
  in
  let run model json warn max_phases remote =
    handle_errors (fun () ->
        match Ops.lint_config_of_specs ~max_phases warn with
        | Error msg ->
          prerr_endline msg;
          exit 2
        | Ok config -> (
          match remote with
          | Some addr ->
            finish_remote
              (remote_call addr ~op:"lint"
                 (Json.Obj
                    [
                      ("model", Json.String (read_file model));
                      ("file", Json.String model);
                      ("json", Json.Bool json);
                      ("warn", strings_json warn);
                      ("max_phases", Json.Int max_phases);
                    ]))
          | None ->
            print_texts
              (Ops.lint_texts ~config ~json ~file:model (read_file model))))
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Statically analyse an MVL model" ~exits ~man)
    Term.(
      const run $ model_arg $ json_arg $ warn_arg $ max_phases_arg $ remote_arg)

(* ---- info ---- *)

let info_cmd =
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:"Also print a one-line lint summary (MVL models only).")
  in
  let run model max_states lint =
    handle_errors (fun () ->
        (* lint first: the summary survives even when the model is too
           broken to generate *)
        if lint then
          if Filename.check_suffix model ".mvl" then
            let ds = Lint.check_text (read_file model) in
            Printf.printf "lint: %s\n"
              (if ds = [] then "clean" else Diagnostic.summary ds)
          else print_endline "lint: not an MVL source";
        if Filename.check_suffix model ".mvb" then begin
          (* header + section index only: O(1) memory, never decodes
             the transition payload, so this works on files far larger
             than RAM *)
          let s = Mvb.stats model in
          Printf.printf "states: %d\n" s.Mvb.s_nb_states;
          Printf.printf "initial: %d\n" s.Mvb.s_initial;
          Printf.printf "labels: %d\n" s.Mvb.s_nb_labels;
          Printf.printf "transitions: %d\n" s.Mvb.s_nb_transitions;
          Printf.printf "file bytes: %d (label section %d, transition section %d)\n"
            s.Mvb.s_file_bytes s.Mvb.s_label_bytes s.Mvb.s_transition_bytes
        end
        else begin
          let lts = load_lts ~max_states model in
          Format.printf "%a@." Lts.pp lts;
          Printf.printf "deadlock states: %d\n"
            (List.length (Lts.deadlocks lts));
          print_endline "labels:";
          List.iter
            (fun l -> Printf.printf "  %s\n" l)
            (Lts.occurring_labels lts)
        end)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print model statistics")
    Term.(const run $ model_arg $ max_states_arg $ lint_flag)

(* ---- cache ---- *)

let cache_cmd =
  let require_cache dir =
    match dir with
    | Some dir -> Cache.open_dir dir
    | None ->
      prerr_endline "no cache directory (use --cache DIR or MVAL_CACHE)";
      exit 2
  in
  let stats_cmd =
    let json_arg =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Print the statistics as JSON (schema $(b,mv-store-stats-v1)).")
    in
    let run dir json remote =
      handle_errors (fun () ->
          match remote with
          | Some addr ->
            finish_remote
              (remote_call addr ~op:"cache-stats"
                 (Json.Obj [ ("json", Json.Bool json) ]))
          | None ->
            let cache = require_cache dir in
            print_texts (Ops.cache_stats_texts ~json cache))
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print entry count, size and hit/miss totals")
      Term.(const run $ cache_arg $ json_arg $ remote_arg)
  in
  let gc_cmd =
    let max_bytes_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"N"
            ~doc:"Evict least-recently-used entries down to $(docv) bytes.")
    in
    let run dir max_bytes =
      handle_errors (fun () ->
          let cache = require_cache dir in
          let evicted = Cache.gc ?max_bytes cache in
          Printf.printf "evicted %d entr%s\n" evicted
            (if evicted = 1 then "y" else "ies"))
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Remove orphaned files and evict LRU entries beyond the cap")
      Term.(const run $ cache_arg $ max_bytes_arg)
  in
  let clear_cmd =
    let run dir =
      handle_errors (fun () ->
          let cache = require_cache dir in
          let removed = Cache.clear cache in
          Printf.printf "removed %d entr%s\n" removed
            (if removed = 1 then "y" else "ies"))
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Remove every cached artifact")
      Term.(const run $ cache_arg)
  in
  let default : unit Term.t = Term.(ret (const (`Help (`Pager, None)))) in
  Cmd.group ~default
    (Cmd.info "cache"
       ~doc:"Inspect and maintain a content-addressed artifact cache")
    [ stats_cmd; gc_cmd; clear_cmd ]

(* ---- version ---- *)

let version_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the version report as JSON instead of aligned text.")
  in
  let run json remote =
    handle_errors (fun () ->
        match remote with
        | Some addr ->
          let versions =
            remote_result (remote_call addr ~op:"version" (Json.Obj []))
          in
          print_texts (Ops.version_texts_of_json ~json versions)
        | None -> print_texts (Ops.version_texts ~json))
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the binary version and every protocol and on-disk schema \
          version (with $(b,--remote): the daemon's versions)")
    Term.(const run $ json_arg $ remote_arg)

let () =
  let default : unit Term.t = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "mval" ~version:Proto.binary_version
             ~doc:"Functional verification and performance evaluation of \
                   asynchronous architectures (the Multival flow)")
          [ generate_cmd; minimize_cmd; compare_cmd; check_cmd; solve_cmd;
            translate_cmd; trace_cmd; simulate_cmd; script_cmd; lint_cmd;
            info_cmd; cache_cmd; version_cmd ]))
